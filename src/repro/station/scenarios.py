"""Canned experimental setups.

:func:`vinci_station` reproduces the paper's test site parameters;
:func:`build_calibrated_monitor` is the one-call entry point used by the
examples and every system bench: it builds a die, a platform and a CTA
loop, runs the §4 calibration campaign against the Promag 50, and
returns a ready :class:`~repro.conditioning.monitor.WaterFlowMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.monitor import MonitorConfig, WaterFlowMonitor
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import MAFConfig, MAFSensor
from repro.sensor.packaging import SensorHousing
from repro.station.line import LineConfig, WaterLine
from repro.station.rig import TestRig, run_calibration

__all__ = ["CalibratedSetup", "vinci_station", "build_calibrated_monitor",
           "DEFAULT_CALIBRATION_SPEEDS_CMPS"]

#: Default calibration campaign: zero (direction offset + King A) plus a
#: geometric ladder over the paper's 0-250 cm/s range.
DEFAULT_CALIBRATION_SPEEDS_CMPS = [0.0, 10.0, 25.0, 50.0, 90.0, 140.0, 200.0, 250.0]


def vinci_station(seed: int = 2024) -> WaterLine:
    """The Tuscan test line: DN50, hard Arno-basin water, 15 °C."""
    return WaterLine(LineConfig(seed=seed))


@dataclass
class CalibratedSetup:
    """Everything :func:`build_calibrated_monitor` produced.

    Attributes
    ----------
    monitor:
        Calibrated, ready-to-run monitoring point.
    rig:
        Test rig wrapping the monitor, the line and the reference meter.
    calibration:
        The fitted calibration (also installed in the monitor).
    """

    monitor: WaterFlowMonitor
    rig: TestRig
    calibration: FlowCalibration


def build_calibrated_monitor(
    seed: int = 42,
    loop_rate_hz: float = 1000.0,
    overtemperature_k: float = 5.0,
    output_bandwidth_hz: float = 0.1,
    use_pulsed_drive: bool = True,
    bit_true_adc: bool = False,
    calibration_speeds_cmps: list[float] | None = None,
    fast: bool = False,
    sensor_config: MAFConfig | None = None,
    housing: SensorHousing | None = None,
) -> CalibratedSetup:
    """Build, calibrate and wrap a complete monitoring point.

    Parameters
    ----------
    seed:
        Instance seed (die tolerances, noise, turbulence).
    loop_rate_hz / overtemperature_k / output_bandwidth_hz:
        Loop and estimator settings (paper defaults).
    use_pulsed_drive:
        Operate (post-calibration) with the paper's pulsed drive.
    bit_true_adc:
        Use the bit-true ΣΔ + CIC chain (slow; E13 only).
    calibration_speeds_cmps:
        Campaign setpoints; defaults to the 0-250 cm/s ladder.
    fast:
        Shorter settle/average windows — for unit tests, not benches.
    sensor_config / housing:
        Override the die or the assembly under test.
    """
    sensor = MAFSensor(sensor_config or MAFConfig(seed=seed),
                       housing=housing)
    cal_platform = ISIFPlatform.for_anemometer(
        loop_rate_hz=loop_rate_hz, bit_true_adc=bit_true_adc, seed=seed)
    cta_cfg = CTAConfig(overtemperature_k=overtemperature_k)
    cal_controller = CTAController(sensor, cal_platform, cta_cfg)
    line = vinci_station(seed=seed + 1)
    settle_s = 0.3 if fast else 1.0
    average_s = 0.2 if fast else 0.5
    speeds = calibration_speeds_cmps or DEFAULT_CALIBRATION_SPEEDS_CMPS
    calibration = run_calibration(
        cal_controller, speeds, line=line,
        settle_s=settle_s, average_s=average_s)

    monitor_cfg = MonitorConfig(
        loop_rate_hz=loop_rate_hz,
        cta=cta_cfg,
        output_bandwidth_hz=output_bandwidth_hz,
        use_pulsed_drive=use_pulsed_drive,
    )
    run_platform = ISIFPlatform.for_anemometer(
        loop_rate_hz=loop_rate_hz, bit_true_adc=bit_true_adc, seed=seed + 7)
    monitor = WaterFlowMonitor(sensor, calibration, monitor_cfg,
                               platform=run_platform)
    rig = TestRig(monitor, line=WaterLine(LineConfig(seed=seed + 2),
                                          turbulence_multiplier=sensor.housing.turbulence_multiplier()))
    return CalibratedSetup(monitor=monitor, rig=rig, calibration=calibration)
