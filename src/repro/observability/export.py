"""Exporters for metrics snapshots: JSON lines and Prometheus text.

Both exporters consume the single interchange format produced by
:meth:`repro.observability.MetricsRegistry.snapshot` and both
round-trip: the module also ships the matching parsers, so tests (and
downstream scrapers) can verify that what went out equals what is in
the registry.

JSON lines — one object per metric, ``name`` plus the snapshot state::

    {"name": "runtime.batch.samples", "type": "counter", "value": 81920}

Prometheus text format — dotted names are sanitized to underscores with
a ``repro_`` prefix; the original dotted name rides in the ``# HELP``
line so :func:`parse_prometheus` can restore it.  Histograms are
rendered as Prometheus *summaries* (quantile series plus ``_sum`` and
``_count``), which is the faithful mapping for reservoir-quantile
instruments.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import SpanRecord

__all__ = ["export_jsonl", "parse_jsonl", "export_prometheus",
           "parse_prometheus", "prometheus_name", "escape_label_value",
           "unescape_label_value", "export_spans_jsonl",
           "parse_spans_jsonl"]

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))
#: A sample rendered by ``_fmt`` from an int (floats always carry a
#: ``.``/exponent through ``repr``), so int-ness survives the round trip.
_INT_SAMPLE = re.compile(r"[+-]?[0-9]+$")


def _snapshot(source: MetricsRegistry | dict) -> dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    if isinstance(source, dict):
        return source
    raise ConfigurationError(
        "exporters take a MetricsRegistry or a snapshot dict")


def export_jsonl(source: MetricsRegistry | dict) -> str:
    """Render a registry (or snapshot) as JSON lines, one metric each."""
    lines = []
    for name, state in _snapshot(source).items():
        lines.append(json.dumps({"name": name, **state}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> dict[str, dict]:
    """Parse :func:`export_jsonl` output back into a snapshot dict.

    Raises
    ------
    ConfigurationError
        On a malformed line or a duplicate metric name.
    """
    snapshot: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            name = data.pop("name")
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"bad metrics line {lineno}: {exc}") from exc
        if name in snapshot:
            raise ConfigurationError(f"duplicate metric {name!r}")
        snapshot[name] = data
    return snapshot


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus (``repro_`` prefix)."""
    return "repro_" + _UNSAFE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


_UNESCAPE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"\\": "\\", '"': '"', "n": "\n"}


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (unknown escapes pass through)."""
    return _UNESCAPE.sub(
        lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(0)), value)


def _escape_help(text: str) -> str:
    """HELP-line escaping: the format defines ``\\\\`` and ``\\n`` only."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _unescape_help(text: str) -> str:
    return _UNESCAPE.sub(
        lambda m: {"\\": "\\", "n": "\n"}.get(m.group(1), m.group(0)), text)


def export_prometheus(source: MetricsRegistry | dict) -> str:
    """Render a registry (or snapshot) in Prometheus text format."""
    out: list[str] = []
    for name, state in _snapshot(source).items():
        pname = prometheus_name(name)
        out.append(f"# HELP {pname} {_escape_help(name)}")
        kind = state["type"]
        if kind in ("counter", "gauge"):
            out.append(f"# TYPE {pname} {kind}")
            out.append(f"{pname} {_fmt(state['value'])}")
        elif kind == "histogram":
            out.append(f"# TYPE {pname} summary")
            for q_label, key in _QUANTILES:
                value = state.get(key)
                if value is not None:
                    out.append(
                        f'{pname}{{quantile="{escape_label_value(q_label)}"}}'
                        f' {_fmt(value)}')
            out.append(f"{pname}_sum {_fmt(state['sum'])}")
            out.append(f"{pname}_count {_fmt(state['count'])}")
        else:
            raise ConfigurationError(f"unknown metric type {kind!r}")
    return "\n".join(out) + ("\n" if out else "")


def _fmt(value: float | int) -> str:
    """Prometheus sample value: repr keeps float64 exactness.

    Non-finite floats render as the canonical Prometheus spellings
    (``NaN`` / ``+Inf`` / ``-Inf``) — Python's ``repr`` forms (``nan``,
    ``inf``) are not valid exposition-format samples.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse :func:`export_prometheus` output back into per-metric state.

    Returns ``{dotted_name: state}`` with the original dotted names
    (recovered from the HELP lines).  Histograms come back with the
    summary-visible fields only: ``count``, ``sum`` and the exported
    quantiles.

    Raises
    ------
    ConfigurationError
        On samples whose name was never introduced by a HELP line, or
        unparsable lines.
    """
    dotted: dict[str, str] = {}
    types: dict[str, str] = {}
    parsed: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            pname, _, original = rest.partition(" ")
            dotted[pname] = _unescape_help(original)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            pname, _, kind = rest.partition(" ")
            types[pname] = kind
            continue
        if line.startswith("#"):
            continue
        match = re.match(
            r'^([a-zA-Z0-9_]+)(\{quantile="((?:[^"\\]|\\.)*)"\})?\s+(\S+)$',
            line)
        if match is None:
            raise ConfigurationError(f"bad prometheus line {lineno}: {line!r}")
        sample, _, quantile, raw = match.groups()
        if quantile is not None:
            quantile = unescape_label_value(quantile)
        try:
            value = float(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad prometheus sample value on line {lineno}: "
                f"{raw!r}") from exc
        base = sample
        suffix = None
        for cand in ("_sum", "_count"):
            if sample.endswith(cand) and sample[:-len(cand)] in dotted:
                base, suffix = sample[:-len(cand)], cand[1:]
                break
        if base not in dotted:
            raise ConfigurationError(
                f"prometheus sample {sample!r} has no HELP line")
        name = dotted[base]
        kind = types.get(base, "gauge")
        if kind in ("counter", "gauge"):
            # Recover int-ness from the sample *text*: ``_fmt`` renders
            # int 4 as "4" but float 4.0 as "4.0", so value.is_integer()
            # would wrongly coerce integer-valued float counters.
            parsed[name] = {
                "type": kind,
                "value": int(raw) if _INT_SAMPLE.match(raw) else value,
            }
        else:
            state = parsed.setdefault(name, {"type": "histogram"})
            if suffix == "count":
                state["count"] = int(value)
            elif suffix == "sum":
                state["sum"] = value
            elif quantile is not None:
                key = {q: k for q, k in _QUANTILES}.get(quantile)
                state[key if key else f"q{quantile}"] = value
    return parsed


def export_spans_jsonl(records) -> str:
    """Render span records as JSON lines, one span per line.

    Takes any iterable of
    :class:`~repro.observability.tracer.SpanRecord` (e.g.
    ``get_tracer().records()``, including absorbed worker spans); the
    full tree identity (``trace_id``/``span_id``/``parent_id``) rides
    along, so :func:`parse_spans_jsonl` plus
    :func:`~repro.observability.tracer.span_tree` reassemble the forest
    exactly.
    """
    lines = []
    for record in records:
        lines.append(json.dumps({
            "name": record.name,
            "start_s": record.start_s,
            "duration_s": record.duration_s,
            "parent": record.parent,
            "tags": record.tags,
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_spans_jsonl(text: str) -> list[SpanRecord]:
    """Parse :func:`export_spans_jsonl` output back into records.

    Raises
    ------
    ConfigurationError
        On a line that is not a JSON object with the span fields.
    """
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            records.append(SpanRecord(
                name=data["name"],
                start_s=float(data["start_s"]),
                duration_s=float(data["duration_s"]),
                parent=data.get("parent"),
                tags=dict(data.get("tags") or {}),
                trace_id=str(data.get("trace_id", "")),
                span_id=str(data.get("span_id", "")),
                parent_id=data.get("parent_id"),
            ))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"bad span line {lineno}: {exc}") from exc
    return records
