"""Fleet observability: metrics, tracing and structured events.

The paper's §6 field deployment only worked because the ISIF platform
exposed its internal loop state for months of unattended evaluation;
this package gives the reproduction the same property.  Three
primitives, all dependency-free and all **opt-in**:

- :class:`MetricsRegistry` (:mod:`repro.observability.metrics`) —
  counters, gauges and bounded-reservoir histograms;
- :class:`Tracer` (:mod:`repro.observability.tracer`) — context-manager
  spans over lifecycle stages, feeding ``span.<name>.s`` histograms;
- :class:`EventLog` (:mod:`repro.observability.events`) — structured
  discrete occurrences.

Plus two exporters (:mod:`repro.observability.export`): JSON-lines
snapshots and Prometheus text format, both with round-trip parsers.

Everything hangs off process-wide defaults that start **disabled**; a
disabled instrument call is one attribute check.  Turn the layer on
with::

    from repro import observability

    observability.enable()
    ...  # run sessions, fleets, benches
    print(observability.export_prometheus(observability.get_registry()))

or scoped::

    with observability.observed() as registry:
        session.run(profile)
    print(registry.snapshot())

Instrumented hot paths: batch-engine chunk advance, session lifecycle
stages, the calibration LRU, the scalar CTA loop, the LEON scheduler's
bulk accounting, telemetry framing, and fleet characterization — see
``docs/observability.md`` for the metric name catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.events import (Event, EventLog, get_event_log,
                                        set_event_log)
from repro.observability.export import (export_jsonl, export_prometheus,
                                        parse_jsonl, parse_prometheus,
                                        prometheus_name)
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry, get_registry,
                                         set_registry)
from repro.observability.tracer import (Span, SpanRecord, Tracer, get_tracer,
                                        set_tracer)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "Event",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "export_jsonl",
    "parse_jsonl",
    "export_prometheus",
    "parse_prometheus",
    "prometheus_name",
    "enable",
    "disable",
    "enabled",
    "observed",
]


def enable() -> None:
    """Turn on the default registry, tracer and event log."""
    get_registry().enabled = True
    get_tracer().enabled = True
    get_event_log().enabled = True


def disable() -> None:
    """Turn the default observability sinks back off (the start state)."""
    get_registry().enabled = False
    get_tracer().enabled = False
    get_event_log().enabled = False


def enabled() -> bool:
    """Whether the default metrics registry is currently collecting."""
    return get_registry().enabled


@contextmanager
def observed():
    """Enable observability for a block; yields the default registry.

    Restores the previous enabled/disabled state on exit, so tests and
    benches can instrument a run without leaking global state.
    """
    registry = get_registry()
    tracer = get_tracer()
    log = get_event_log()
    before = (registry.enabled, tracer.enabled, log.enabled)
    enable()
    try:
        yield registry
    finally:
        registry.enabled, tracer.enabled, log.enabled = before
