"""Fleet observability: metrics, tracing, events and profiling.

The paper's §6 field deployment only worked because the ISIF platform
exposed its internal loop state for months of unattended evaluation;
this package gives the reproduction the same property.  Four
primitives, all dependency-free and all **opt-in**:

- :class:`MetricsRegistry` (:mod:`repro.observability.metrics`) —
  counters, gauges and bounded-reservoir histograms;
- :class:`Tracer` (:mod:`repro.observability.tracer`) — context-manager
  spans over lifecycle stages, feeding ``span.<name>.s`` histograms,
  with propagatable :class:`TraceContext` identity;
- :class:`EventLog` (:mod:`repro.observability.events`) — structured
  discrete occurrences;
- :class:`Profiler` (:mod:`repro.observability.profile`) — per-stage
  wall/CPU attribution for the kernel layer.

Plus the exporters (:mod:`repro.observability.export`): JSON-lines and
Prometheus metrics snapshots and JSON-lines span records, all with
round-trip parsers, and the cross-process layer
(:mod:`repro.observability.remote`): worker runs snapshot their sinks
into a picklable :class:`TelemetryHarvest` that the sharded runtime
ships home and :func:`merge_harvest` folds into the parent's view.

Everything hangs off process-wide defaults that start **disabled**; a
disabled instrument call is one attribute check.  Turn the layer on
with::

    from repro import observability

    observability.enable()            # enable(profile=True) adds timing
    ...  # run sessions, fleets, benches
    print(observability.export_prometheus(observability.get_registry()))

or scoped::

    with observability.observed() as registry:
        session.run(profile)
    print(registry.snapshot())

Instrumented hot paths: batch-engine chunk advance (plus the kernel
profiling stages), session lifecycle stages, the calibration LRU, the
scalar CTA loop, the LEON scheduler's bulk accounting, telemetry
framing, sharded-run workers, and fleet characterization — see
``docs/observability.md`` for the metric name catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.events import (Event, EventLog, get_event_log,
                                        set_event_log)
from repro.observability.export import (export_jsonl, export_prometheus,
                                        export_spans_jsonl, parse_jsonl,
                                        parse_prometheus, parse_spans_jsonl,
                                        prometheus_name)
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry, get_registry,
                                         merge_states, set_registry)
from repro.observability.profile import Profiler, get_profiler, set_profiler
from repro.observability.remote import (MetricsSnapshot, TelemetryHarvest,
                                        TelemetryRequest,
                                        harvest_worker_telemetry,
                                        install_worker_telemetry,
                                        merge_harvest)
from repro.observability.tracer import (Span, SpanRecord, TraceContext,
                                        Tracer, get_tracer, set_tracer,
                                        span_tree)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_states",
    "get_registry",
    "set_registry",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "span_tree",
    "get_tracer",
    "set_tracer",
    "Event",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "Profiler",
    "get_profiler",
    "set_profiler",
    "MetricsSnapshot",
    "TelemetryRequest",
    "TelemetryHarvest",
    "install_worker_telemetry",
    "harvest_worker_telemetry",
    "merge_harvest",
    "export_jsonl",
    "parse_jsonl",
    "export_prometheus",
    "parse_prometheus",
    "prometheus_name",
    "export_spans_jsonl",
    "parse_spans_jsonl",
    "enable",
    "disable",
    "enabled",
    "observed",
]


def enable(profile: bool = False) -> None:
    """Turn on the default registry, tracer and event log.

    ``profile=True`` additionally enables the default
    :class:`Profiler` (off by default: the timing hooks cost real
    ``perf_counter``/``process_time`` calls in the kernel loop).
    """
    get_registry().enabled = True
    get_tracer().enabled = True
    get_event_log().enabled = True
    if profile:
        get_profiler().enabled = True


def disable() -> None:
    """Turn every default observability sink back off (the start state)."""
    get_registry().enabled = False
    get_tracer().enabled = False
    get_event_log().enabled = False
    get_profiler().enabled = False


def enabled() -> bool:
    """Whether the default metrics registry is currently collecting."""
    return get_registry().enabled


@contextmanager
def observed(profile: bool = False):
    """Enable observability for a block; yields the default registry.

    Restores the previous enabled/disabled state on exit, so tests and
    benches can instrument a run without leaking global state.
    ``profile=True`` also turns the default profiler on for the block.
    """
    registry = get_registry()
    tracer = get_tracer()
    log = get_event_log()
    profiler = get_profiler()
    before = (registry.enabled, tracer.enabled, log.enabled,
              profiler.enabled)
    enable(profile=profile)
    try:
        yield registry
    finally:
        (registry.enabled, tracer.enabled, log.enabled,
         profiler.enabled) = before
