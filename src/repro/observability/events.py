"""Structured event log: discrete, typed occurrences with fields.

Counters say *how often*, histograms say *how long*; the event log says
*what happened* — a session changed lifecycle state, a fleet
characterization started, a leak alarm fired.  Events are plain frozen
records (name + wall-clock time + JSON-safe fields) in a bounded deque,
exportable as JSON lines for the same unattended-evaluation workflow
the paper's §6 field deployment relied on.

Like the rest of :mod:`repro.observability`, the default log starts
disabled and :meth:`EventLog.emit` is a cheap no-op until the process
opts in.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Event", "EventLog", "get_event_log", "set_event_log"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence.

    Attributes
    ----------
    name:
        Dotted event name (``session.state``, ``fleet.characterize``).
    time_s:
        Wall-clock time (``time.time``) at emission.
    fields:
        JSON-safe payload.
    """

    name: str
    time_s: float
    fields: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """One JSON object (a single JSONL line, no newline)."""
        return json.dumps({"name": self.name, "time_s": self.time_s,
                           **self.fields}, sort_keys=True)


class EventLog:
    """Bounded, append-only log of :class:`Event` records."""

    def __init__(self, max_events: int = 4096, enabled: bool = True) -> None:
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.enabled = bool(enabled)
        self._events: deque[Event] = deque(maxlen=int(max_events))

    def emit(self, name: str, **fields) -> Event | None:
        """Append an event; returns it, or None while disabled."""
        if not self.enabled:
            return None
        event = Event(name=name, time_s=time.time(), fields=fields)
        self._events.append(event)
        return event

    def absorb(self, events) -> None:
        """Append harvested remote events (no-op while disabled).

        Events carry wall-clock ``time_s``, which *is* comparable
        across processes, so absorbed events interleave meaningfully
        with local ones on export.
        """
        if not self.enabled:
            return
        self._events.extend(events)

    def events(self, name: str | None = None) -> list[Event]:
        """Retained events, optionally filtered by name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def to_jsonl(self) -> str:
        """All retained events as JSON lines (newline-terminated)."""
        return "".join(e.to_json() + "\n" for e in self._events)

    @staticmethod
    def from_jsonl(text: str) -> list[Event]:
        """Parse JSON lines produced by :meth:`to_jsonl`.

        Raises
        ------
        ConfigurationError
            On a line that is not a JSON object with name/time_s.
        """
        events = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                name = data.pop("name")
                time_s = float(data.pop("time_s"))
            except (ValueError, KeyError, TypeError, AttributeError) as exc:
                raise ConfigurationError(
                    f"bad event line {lineno}: {exc}") from exc
            events.append(Event(name=name, time_s=time_s, fields=data))
        return events

    def reset(self) -> None:
        """Drop all retained events (test isolation)."""
        self._events.clear()


#: Process-wide default event log; disabled until the caller opts in.
_DEFAULT = EventLog(enabled=False)


def get_event_log() -> EventLog:
    """The process-wide default event log used by all instrumentation."""
    return _DEFAULT


def set_event_log(log: EventLog) -> EventLog:
    """Swap the default event log (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(log, EventLog):
        raise ConfigurationError("set_event_log needs an EventLog")
    _DEFAULT = log
    return log
