"""Cross-process telemetry: snapshot in the worker, merge in the parent.

The sharded runtime (:mod:`repro.runtime.parallel`) forks worker
processes whose observability data would otherwise die with them.  This
module closes that gap with three picklable value types and a
bracketing pair of functions:

- :class:`TelemetryRequest` — what the parent asks a worker to collect:
  the :class:`~repro.observability.tracer.TraceContext` its spans should
  nest under, and whether the profiler is on.
- :class:`MetricsSnapshot` — a registry's full merge-grade state
  (:meth:`~repro.observability.metrics.MetricsRegistry.dump`), with an
  associative :meth:`MetricsSnapshot.merge` whose empty snapshot is the
  identity, so any fold order over any shard partition yields the same
  aggregate.
- :class:`TelemetryHarvest` — everything one worker collected: its
  metrics snapshot, finished span records, events and profiler report.

Worker side, :func:`install_worker_telemetry` swaps in **fresh**
enabled sinks before the run (on Linux the fork start method means the
worker *inherits* the parent's live registry — harvesting that would
double-count every pre-existing value) and
:func:`harvest_worker_telemetry` captures the run's output and restores
the previous defaults.  Parent side, :func:`merge_harvest` folds a
harvest into the local sinks, each gated on its own ``enabled`` flag so
opt-in stays per-sink.  Durations land exactly once: span *records*
come home via :meth:`Tracer.absorb` (which never re-feeds histograms)
while their ``span.*`` histograms arrive inside the metrics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.observability.events import EventLog, get_event_log, set_event_log
from repro.observability.metrics import MetricsRegistry, get_registry, \
    merge_states, set_registry
from repro.observability.profile import Profiler, get_profiler, set_profiler
from repro.observability.tracer import TraceContext, Tracer, get_tracer, \
    set_tracer

__all__ = ["MetricsSnapshot", "TelemetryRequest", "TelemetryHarvest",
           "install_worker_telemetry", "harvest_worker_telemetry",
           "merge_harvest"]

_KNOWN_KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricsSnapshot:
    """A registry's dumped state as a picklable, mergeable value.

    ``metrics`` maps metric name to the merge-grade state dict of
    :meth:`MetricsRegistry.dump`; treat it as immutable.
    """

    metrics: dict = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity (no instruments)."""
        return cls(metrics={})

    @classmethod
    def capture(cls, registry: MetricsRegistry | None = None,
                ) -> "MetricsSnapshot":
        """Dump ``registry`` (default: the process registry)."""
        registry = registry if registry is not None else get_registry()
        return cls(metrics=registry.dump())

    def names(self) -> tuple[str, ...]:
        """Captured metric names, sorted."""
        return tuple(sorted(self.metrics))

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (associative; ``empty()`` is identity).

        Per-instrument semantics live in
        :func:`repro.observability.metrics.merge_states`.
        """
        merged = {}
        for name in sorted(set(self.metrics) | set(other.metrics)):
            merged[name] = merge_states(self.metrics.get(name),
                                        other.metrics.get(name))
        return MetricsSnapshot(metrics=merged)

    def to_dict(self) -> dict:
        """JSON-safe form: ``{"metrics": {name: state}}``."""
        return {"metrics": {name: dict(state)
                            for name, state in self.metrics.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        """Rebuild from :meth:`to_dict` output.

        Raises
        ------
        ConfigurationError
            On a payload without a ``metrics`` mapping or with an
            unknown instrument type.
        """
        try:
            metrics = dict(data["metrics"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                "metrics snapshot needs a 'metrics' mapping") from exc
        for name, state in metrics.items():
            if not isinstance(state, dict) \
                    or state.get("type") not in _KNOWN_KINDS:
                raise ConfigurationError(
                    f"bad snapshot state for {name!r}: {state!r}")
        return cls(metrics=metrics)


@dataclass(frozen=True)
class TelemetryRequest:
    """What the parent asks one worker to collect (pickled to it)."""

    trace_context: TraceContext | None = None
    profile: bool = False


@dataclass(frozen=True)
class TelemetryHarvest:
    """Everything one worker's run collected (pickled back)."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot.empty)
    spans: tuple = ()
    events: tuple = ()
    profile: dict = field(default_factory=dict)


def install_worker_telemetry(request: TelemetryRequest) -> tuple:
    """Swap in fresh enabled sinks for a worker run; returns the old ones.

    Fresh sinks matter: with the fork start method the worker inherits
    the parent's registry *contents*, and harvesting those would
    double-count everything the parent already holds.  The new tracer
    nests under ``request.trace_context``; the profiler comes up only
    if the request asks for it.  Pass the returned tuple to
    :func:`harvest_worker_telemetry`.
    """
    previous = (get_registry(), get_tracer(), get_event_log(),
                get_profiler())
    registry = set_registry(MetricsRegistry(enabled=True))
    set_tracer(Tracer(registry=registry, enabled=True,
                      parent_context=request.trace_context))
    set_event_log(EventLog(enabled=True))
    set_profiler(Profiler(registry=registry, enabled=request.profile))
    return previous


def harvest_worker_telemetry(previous: tuple) -> TelemetryHarvest:
    """Capture the installed sinks' output and restore the old defaults."""
    harvest = TelemetryHarvest(
        metrics=MetricsSnapshot.capture(get_registry()),
        spans=tuple(get_tracer().records()),
        events=tuple(get_event_log().events()),
        profile=get_profiler().report(),
    )
    registry, tracer, event_log, profiler = previous
    set_registry(registry)
    set_tracer(tracer)
    set_event_log(event_log)
    set_profiler(profiler)
    return harvest


def merge_harvest(harvest: TelemetryHarvest,
                  registry: MetricsRegistry | None = None,
                  tracer: Tracer | None = None,
                  event_log: EventLog | None = None,
                  profiler: Profiler | None = None) -> None:
    """Fold one worker's harvest into the parent-side sinks.

    Defaults to the process-wide sinks; each is gated on its own
    ``enabled`` flag so a parent that only opted into metrics does not
    start retaining spans or events as a side effect of sharding.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    event_log = event_log if event_log is not None else get_event_log()
    profiler = profiler if profiler is not None else get_profiler()
    if registry.enabled:
        registry.merge(harvest.metrics)
    tracer.absorb(harvest.spans)
    event_log.absorb(harvest.events)
    profiler.merge(harvest.profile)
