"""Snapshot pipeline: periodic registry deltas in a bounded ring buffer.

The cross-process harvest layer (PR 5) established a merge algebra over
dumped instrument states — :func:`repro.observability.metrics.merge_states`
folds two states into one.  The live pipeline runs that algebra *in
reverse*: :func:`snapshot_delta` computes, for two successive cumulative
dumps ``old`` and ``new``, a delta state such that

    ``merge_states(old, delta) == new``   (exactly, per instrument)

so each ring-buffer sample carries only what changed in that interval
(counter increments, histogram count/sum deltas with the newly-observed
reservoir tail, current gauge writes).  Consumers get interval rates
for free and the ring stays small; the latest *cumulative* dump is kept
separately for absolute readings.

:class:`SnapshotPipeline` samples on a daemon thread at a configurable
cadence, or deterministically under test: inject a ``clock`` and call
:meth:`SnapshotPipeline.sample` by hand — no thread, no wall time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from collections import deque

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["SeriesSample", "SnapshotPipeline", "snapshot_delta"]


def _delta_one(old: dict | None, new: dict) -> dict | None:
    """Delta for one instrument; None when nothing changed (counters/histograms).

    Gauges always re-emit (their merge is last-write-wins, so the delta
    *is* the current state).  Returns the full ``new`` state when the
    instrument is fresh or went backwards (registry reset) — the merge
    identity then holds against an absent/stale ``old`` by convention.
    """
    kind = new.get("type")
    if old is None or old.get("type") != kind:
        return dict(new)
    if kind == "counter":
        diff = new["value"] - old["value"]
        if diff < 0:  # reset between samples; re-baseline
            return dict(new)
        if diff == 0:
            return None
        return {"type": "counter", "value": diff}
    if kind == "gauge":
        return dict(new)
    if kind == "histogram":
        d = new["count"] - old["count"]
        if d < 0:  # reset between samples; re-baseline
            return dict(new)
        if d == 0:
            return None
        # The chronological reservoir's last d entries are exactly the
        # observations made since ``old`` (or, when more than
        # reservoir_size arrived, the most recent survivors) — merging
        # them onto old's reservoir reproduces new's reservoir exactly.
        tail = list(new["reservoir"])[-d:] if d else []
        return {
            "type": "histogram",
            "count": d,
            "sum": new["sum"] - old["sum"],
            "min": new["min"],
            "max": new["max"],
            "reservoir": tail,
            "reservoir_size": new["reservoir_size"],
        }
    raise ConfigurationError(f"unknown metric type {kind!r}")


def snapshot_delta(old: dict, new: dict) -> dict:
    """Per-instrument delta between two cumulative registry dumps.

    ``old`` and ``new`` are ``{name: state}`` mappings from
    :meth:`MetricsRegistry.dump`.  The result contains only instruments
    that changed, and satisfies ``merge_states(old[name], delta[name])
    == new[name]`` for every emitted name (for histograms this holds
    exactly only when min/max are monotone between dumps — true for
    cumulative dumps of one registry, which is the only supported use).

    Instruments present in ``old`` but missing from ``new`` (a registry
    reset) are simply dropped — deltas are defined over monotone
    registries.
    """
    out: dict[str, dict] = {}
    for name, state in new.items():
        d = _delta_one(old.get(name), state)
        if d is not None:
            out[name] = d
    return out


@dataclass(frozen=True)
class SeriesSample:
    """One ring-buffer entry: what changed since the previous sample.

    Attributes
    ----------
    seq:
        Monotone sample counter (0-based, survives ring eviction).
    t_s:
        Sample timestamp from the pipeline's clock.
    delta:
        ``{name: state}`` instrument deltas vs the previous sample
        (see :func:`snapshot_delta`); empty when nothing moved.
    extra:
        Evaluated auxiliary sources (``{source_name: value}``), e.g. a
        service's ``stats()``/``health()`` output.
    """

    seq: int
    t_s: float
    delta: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe view."""
        return {"seq": self.seq, "t_s": self.t_s,
                "delta": self.delta, "extra": self.extra}


class SnapshotPipeline:
    """Background sampler feeding a bounded time-series ring buffer.

    Parameters
    ----------
    cadence_s:
        Sampling period for the background thread (> 0).
    retention:
        Ring-buffer length in samples (>= 1); the default keeps two
        minutes of history at the default 0.5 s cadence.
    registry:
        Registry to sample; defaults to the process-wide one *at each
        sample* (so a test that swaps the default registry is honoured).
    clock:
        Timestamp source, default ``time.monotonic``.  Inject a fake and
        drive :meth:`sample` manually for deterministic tests.
    sources:
        Optional ``{name: callable}`` auxiliary sources evaluated at
        every sample into :attr:`SeriesSample.extra`.  A raising source
        contributes ``{"error": repr}`` instead of killing the sampler.
    """

    def __init__(self, *, cadence_s: float = 0.5, retention: int = 240,
                 registry: MetricsRegistry | None = None,
                 clock=None, sources: dict | None = None) -> None:
        if cadence_s <= 0.0:
            raise ConfigurationError("cadence_s must be > 0")
        if retention < 1:
            raise ConfigurationError("retention must be >= 1")
        self.cadence_s = float(cadence_s)
        self.retention = int(retention)
        self._registry = registry
        if clock is None:
            import time
            clock = time.monotonic
        self._clock = clock
        self._sources = dict(sources or {})
        self._ring: deque[SeriesSample] = deque(maxlen=self.retention)
        self._last_dump: dict = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._errors = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------

    def _registry_now(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def sample(self) -> SeriesSample:
        """Take one sample now (also what the background thread calls)."""
        dump = self._registry_now().dump()
        extra = {}
        for name, source in self._sources.items():
            try:
                extra[name] = source()
            except Exception as exc:  # noqa: BLE001 - keep the sampler alive
                self._errors += 1
                extra[name] = {"error": repr(exc)}
        with self._lock:
            delta = snapshot_delta(self._last_dump, dump)
            entry = SeriesSample(seq=self._seq, t_s=float(self._clock()),
                                 delta=delta, extra=extra)
            self._ring.append(entry)
            self._last_dump = dump
            self._seq += 1
        return entry

    # -- background thread ---------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SnapshotPipeline":
        """Start the daemon sampler thread (idempotent); returns self."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-live-sampler", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.cadence_s):
            try:
                self.sample()
            except Exception:  # noqa: BLE001 - monitoring must not crash the host
                self._errors += 1

    def stop(self, *, final_sample: bool = True) -> None:
        """Stop the sampler thread; optionally take one last sample."""
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            try:
                self.sample()
            except Exception:  # noqa: BLE001
                self._errors += 1

    def __enter__(self) -> "SnapshotPipeline":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- reads ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def errors(self) -> int:
        """Sampler/source exceptions swallowed so far."""
        return self._errors

    def window(self, last: int | None = None) -> list[SeriesSample]:
        """The most recent ``last`` samples, oldest first (all when None)."""
        with self._lock:
            entries = list(self._ring)
        if last is not None:
            if last < 1:
                raise ConfigurationError("last must be >= 1")
            entries = entries[-last:]
        return entries

    def latest(self) -> SeriesSample | None:
        """The newest sample, or None before the first one."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def latest_metrics(self) -> dict:
        """The latest *cumulative* registry dump (not a delta)."""
        with self._lock:
            return dict(self._last_dump)

    def payload(self, last: int | None = None) -> dict:
        """JSON-safe window for the ``/snapshot`` endpoint.

        Carries the sample deltas/extras plus one copy of the latest
        cumulative dump under ``metrics`` — so the payload stays light
        no matter the window length.
        """
        entries = self.window(last)
        return {
            "cadence_s": self.cadence_s,
            "retention": self.retention,
            "count": len(entries),
            "errors": self._errors,
            "metrics": self.latest_metrics(),
            "samples": [e.to_dict() for e in entries],
        }
