"""`repro top`: a terminal dashboard over the live HTTP plane.

Pure rendering over the ``/snapshot`` + ``/health`` payloads — the
layout function takes plain dicts and returns a string, so the
dashboard is unit-testable without sockets.  The CLI loop polls a
:class:`~repro.observability.live.http.LiveServer` URL with urllib and
redraws.

Throughput figures come from the ring buffer's *delta* samples (counter
increments over the sample interval), tick-latency percentiles from the
newest ``service.tick.wall_s`` reservoir window, and the worst-health
rigs from the service's fused health scores — the three things an
operator watches on a resident fleet.
"""

from __future__ import annotations

import json
import math
import urllib.request

__all__ = ["fetch_json", "fetch_frame", "render_top", "run_top"]


def fetch_json(base_url: str, path: str, timeout: float = 5.0):
    """GET ``base_url + path`` and decode the JSON body."""
    url = base_url.rstrip("/") + path
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_frame(base_url: str, *, last: int = 5, timeout: float = 5.0) -> dict:
    """One dashboard frame: the snapshot window plus the health report."""
    return {
        "snapshot": fetch_json(base_url, f"/snapshot?last={last}", timeout),
        "health": fetch_json(base_url, "/health", timeout),
    }


def _quantile(values, q: float) -> float:
    """Nearest-rank quantile of a sequence; NaN when empty."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return float("nan")
    rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
    return ordered[max(rank, 0)]

def _fmt_num(value: float) -> str:
    """Human-scale count formatting (1234567 -> '1.2M')."""
    if value != value:
        return "-"
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= scale:
            return f"{value / scale:.1f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def _counter_rate(samples: list[dict], name: str) -> float:
    """Mean per-second increment of a counter over the delta window."""
    if len(samples) < 2:
        return float("nan")
    total = 0.0
    for entry in samples[1:]:
        state = entry.get("delta", {}).get(name)
        if state and state.get("type") == "counter":
            total += float(state["value"])
    span = float(samples[-1]["t_s"]) - float(samples[0]["t_s"])
    return total / span if span > 0 else float("nan")


def _tick_latency_ms(snapshot: dict) -> tuple[float, float]:
    """(p50, p99) tick wall time in ms from the freshest reservoir window."""
    reservoir: list[float] = []
    for entry in reversed(snapshot.get("samples", [])):
        state = entry.get("delta", {}).get("service.tick.wall_s")
        if state and state.get("type") == "histogram":
            reservoir = list(state.get("reservoir", []))
            break
    if not reservoir:
        cumulative = snapshot.get("metrics", {}).get("service.tick.wall_s")
        if cumulative and cumulative.get("type") == "histogram":
            reservoir = list(cumulative.get("reservoir", []))
    if not reservoir:
        return (float("nan"), float("nan"))
    return (_quantile(reservoir, 0.50) * 1e3, _quantile(reservoir, 0.99) * 1e3)


def _group_rows(samples: list[dict]) -> list[dict]:
    """Per-cohort table rows; rates from consecutive service stats."""
    frames = [entry.get("extra", {}).get("service")
              for entry in samples
              if isinstance(entry.get("extra", {}).get("service"), dict)]
    if not frames:
        return []
    latest = frames[-1]
    previous = frames[-2] if len(frames) >= 2 else None
    prev_groups = {g["group_id"]: g for g in (previous or {}).get("groups", [])}
    prev_t = None
    if previous is not None:
        for entry in samples:
            if entry.get("extra", {}).get("service") is previous:
                prev_t = float(entry["t_s"])
    latest_t = None
    for entry in samples:
        if entry.get("extra", {}).get("service") is latest:
            latest_t = float(entry["t_s"])
    rows = []
    for group in latest.get("groups", []):
        row = {
            "group_id": group.get("group_id"),
            "members": group.get("members"),
            "fleet_size": group.get("fleet_size"),
            "sealed": group.get("sealed"),
            "done_steps": group.get("done_steps"),
            "total_steps": group.get("total_steps"),
            "queue_depth": group.get("queue_depth"),
            "samples_per_s": float("nan"),
        }
        prev = prev_groups.get(group.get("group_id"))
        if (prev is not None and prev_t is not None and latest_t is not None
                and latest_t > prev_t):
            done = (float(group.get("done_steps", 0))
                    - float(prev.get("done_steps", 0)))
            row["samples_per_s"] = (done * float(group.get("fleet_size", 1))
                                    / (latest_t - prev_t))
        rows.append(row)
    return rows


def render_top(snapshot: dict, health: dict | None = None, *,
               url: str = "") -> str:
    """Render one dashboard frame as plain text.

    ``snapshot`` is a ``/snapshot`` payload; ``health`` a ``/health``
    payload (optional).  Pure function — no I/O.
    """
    health = health or {}
    lines = []
    status = str(health.get("status", "unknown"))
    title = "repro top"
    if url:
        title += f" - {url}"
    lines.append(title)
    lines.append(
        f"status: {status}   clients: {health.get('clients', '-')}   "
        f"groups: {health.get('groups', '-')}   "
        f"samples in ring: {snapshot.get('count', 0)}"
        f"/{snapshot.get('retention', '-')}")
    backpressure = health.get("backpressure") or {}
    if backpressure:
        lines.append(
            f"backpressure: stalls={backpressure.get('stalls', 0)} "
            f"saturation={float(backpressure.get('saturation', 0.0)):.1%}")
    samples = snapshot.get("samples", [])
    ticks_rate = _counter_rate(samples, "service.ticks")
    samples_rate = _counter_rate(samples, "service.samples")
    p50_ms, p99_ms = _tick_latency_ms(snapshot)
    lines.append(
        f"throughput: {_fmt_num(samples_rate)} samples/s   "
        f"{_fmt_num(ticks_rate)} ticks/s   "
        f"tick p50 {p50_ms:.2f} ms   p99 {p99_ms:.2f} ms"
        if p50_ms == p50_ms else
        f"throughput: {_fmt_num(samples_rate)} samples/s   "
        f"{_fmt_num(ticks_rate)} ticks/s   tick latency: warming up")
    rows = _group_rows(samples)
    if rows:
        lines.append("")
        lines.append(f"{'cohort':>8} {'members':>8} {'fleet':>6} "
                     f"{'queue':>6} {'progress':>12} {'samples/s':>10}")
        for row in rows:
            done = row.get("done_steps") or 0
            total = row.get("total_steps") or 0
            progress = f"{done}/{total}" if total else str(done)
            queue = row.get("queue_depth")
            lines.append(
                f"{str(row['group_id']):>8} {str(row['members']):>8} "
                f"{str(row['fleet_size']):>6} "
                f"{'-' if queue is None else queue:>6} {progress:>12} "
                f"{_fmt_num(row['samples_per_s']):>10}")
    else:
        lines.append("")
        lines.append("no active cohorts")
    worst = health.get("worst_rigs") or []
    if worst:
        lines.append("")
        lines.append("worst rigs (fused health score):")
        for rig in worst[:5]:
            lines.append(
                f"  client={rig.get('client', '?')} rig={rig.get('rig', '?')} "
                f"score={float(rig.get('score', 0.0)):.3f} "
                f"[{rig.get('status', '?')}]")
    return "\n".join(lines)


def run_top(url: str, *, interval: float = 1.0, frames: int = 0,
            once: bool = False, last: int = 5, out=None, clear=None) -> int:
    """Poll the live plane and redraw; returns a process exit code.

    ``frames=0`` polls until interrupted; ``once`` renders a single
    frame (CI-friendly).  ``out`` defaults to ``print``; ``clear``
    (ANSI home+wipe) defaults to on only for a TTY.
    """
    import sys
    import time

    if out is None:
        out = print
    if clear is None:
        clear = sys.stdout.isatty() and not once
    remaining = 1 if once else frames
    attempts = 0
    rendered = 0
    try:
        while True:
            attempts += 1
            try:
                frame = fetch_frame(url, last=last)
            except Exception as exc:  # noqa: BLE001 - report and keep polling
                out(f"repro top - {url}: fetch failed: {exc!r}")
                frame = None
            if frame is not None:
                text = render_top(frame["snapshot"], frame["health"], url=url)
                if clear:
                    text = "\x1b[2J\x1b[H" + text
                out(text)
                rendered += 1
            if remaining and attempts >= remaining:
                return 0 if rendered == attempts else 1
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
