"""Live observability plane: streaming telemetry for long-lived runs.

Three cooperating pieces turn the harvest-at-end observability stack
into something an operator can watch while a fleet runs:

- :class:`~repro.observability.live.pipeline.SnapshotPipeline` — a
  background sampler that captures :class:`~repro.observability.MetricsRegistry`
  deltas (the PR-5 merge algebra, run in reverse) into a bounded
  time-series ring buffer;
- :class:`~repro.observability.live.http.LiveServer` — a stdlib-only
  HTTP surface exposing ``/metrics`` (Prometheus text), ``/health``,
  ``/ready`` and ``/snapshot`` (JSON ring-buffer window);
- :mod:`~repro.observability.live.top` — the ``repro top`` terminal
  dashboard rendered from those endpoints.

Everything here is opt-in and import-light: nothing starts threads or
sockets until explicitly constructed, and
:class:`~repro.service.FleetService` wires it up only when asked
(``sample_every_s=`` / ``http_port=``).
"""

from repro.observability.live.pipeline import (SeriesSample, SnapshotPipeline,
                                               snapshot_delta)
from repro.observability.live.http import LiveServer

__all__ = ["SeriesSample", "SnapshotPipeline", "snapshot_delta", "LiveServer"]
