"""Stdlib-only HTTP surface for the live observability plane.

:class:`LiveServer` serves four read-only endpoints from a daemon
thread (``http.server.ThreadingHTTPServer`` — no third-party web stack):

- ``/metrics`` — Prometheus text exposition of the registry, straight
  through :func:`repro.observability.export.export_prometheus`;
- ``/health`` — JSON from an injected health source (e.g.
  :meth:`repro.service.FleetService.health`);
- ``/ready`` — 200 ``ready`` / 503 ``not ready`` from an injected
  readiness predicate (load-balancer style liveness);
- ``/snapshot`` — JSON ring-buffer window from a
  :class:`~repro.observability.live.pipeline.SnapshotPipeline`
  (``?last=N`` bounds the window).

The server binds loopback by default and ``port=0`` picks a free port
(read it back from :attr:`LiveServer.port` / :attr:`LiveServer.url`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.observability.export import export_prometheus
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["LiveServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-live/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (monitoring must be quiet)."""

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(code, "application/json", body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        plane: "LiveServer" = self.server.plane  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/metrics":
                registry = plane.registry or get_registry()
                text = export_prometheus(registry)
                self._send(200, PROMETHEUS_CONTENT_TYPE,
                           text.encode("utf-8"))
            elif parsed.path == "/health":
                payload = (plane.health_source()
                           if plane.health_source is not None
                           else {"status": "ok"})
                self._send_json(200, payload)
            elif parsed.path == "/ready":
                ready = (bool(plane.ready_source())
                         if plane.ready_source is not None else True)
                if ready:
                    self._send(200, "text/plain", b"ready\n")
                else:
                    self._send(503, "text/plain", b"not ready\n")
            elif parsed.path == "/snapshot":
                if plane.pipeline is None:
                    self._send_json(404, {"error": "no snapshot pipeline"})
                    return
                query = parse_qs(parsed.query)
                last = None
                if "last" in query:
                    try:
                        last = max(1, int(query["last"][0]))
                    except ValueError:
                        self._send_json(400, {"error": "bad last= value"})
                        return
                self._send_json(200, plane.pipeline.payload(last=last))
            else:
                self._send_json(404, {"error": f"no route {parsed.path!r}"})
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill serving
            try:
                self._send_json(500, {"error": repr(exc)})
            except Exception:  # noqa: BLE001 - client already gone
                pass


class LiveServer:
    """Threaded HTTP server publishing the live observability endpoints.

    Parameters
    ----------
    registry:
        Registry behind ``/metrics``; None means the process-wide one
        at scrape time.
    pipeline:
        Optional :class:`~repro.observability.live.pipeline.SnapshotPipeline`
        behind ``/snapshot`` (404 without one).
    health_source / ready_source:
        Zero-arg callables for ``/health`` (JSON-safe dict) and
        ``/ready`` (truthy = ready).  Both optional.
    host / port:
        Bind address; ``port=0`` (default) picks a free port.
    """

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 pipeline=None, health_source=None, ready_source=None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        if not 0 <= int(port) <= 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        self.registry = registry
        self.pipeline = pipeline
        self.health_source = health_source
        self.ready_source = ready_source
        self._host = host
        self._port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        """True while the server thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def port(self) -> int | None:
        """The bound port (resolved after :meth:`start`), else None."""
        return self._server.server_address[1] if self._server else None

    @property
    def url(self) -> str | None:
        """Base URL (``http://host:port``) once started, else None."""
        return f"http://{self._host}:{self.port}" if self._server else None

    def start(self) -> "LiveServer":
        """Bind and serve on a daemon thread (idempotent); returns self."""
        if self.running:
            return self
        server = ThreadingHTTPServer((self._host, self._port), _Handler)
        server.daemon_threads = True
        server.plane = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-live-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
