"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the numerical backbone of the observability layer
(:mod:`repro.observability`): every instrumented hot path — batch-engine
chunks, session lifecycle stages, the calibration LRU, the scalar CTA
loop, telemetry framing — publishes into one
:class:`MetricsRegistry`.  Three instrument kinds cover the needs of the
reproduction:

- :class:`Counter` — monotone event counts (samples advanced, cache
  hits, dropped frames);
- :class:`Gauge` — last-written values (fleet size, hit rate);
- :class:`Histogram` — distributions with *bounded* memory: running
  count/sum/min/max plus a fixed-size ring reservoir of the most recent
  observations, from which quantiles are estimated.

Overhead discipline: instruments are created through the registry
(get-or-create by name) and every mutation first checks the registry's
``enabled`` flag — a single attribute load and branch — so a disabled
registry costs nanoseconds per call site and allocates nothing.  The
default registry starts **disabled**; observability is strictly opt-in
(see :func:`repro.observability.enable`).

Metric names are dotted lowercase paths with a unit suffix where
meaningful (``runtime.batch.chunk_s``, ``station.calibration_cache.hits``),
mirrored by the Prometheus exporter as underscore-separated names.

Cross-process aggregation: every instrument serializes its *full* state
through ``dump()`` / ``restore()`` (unlike ``snapshot()``, which is the
exporter-facing view), two dumped states combine through
:func:`merge_states`, and :meth:`MetricsRegistry.merge` folds a whole
dumped registry (e.g. a worker's
:class:`~repro.observability.remote.MetricsSnapshot`) into this one.
The merge is deterministic and associative: counters sum, gauges are
last-write-wins on their ``updated_s`` timestamp (right operand wins
ties), histogram running stats combine exactly and their reservoirs
concatenate chronologically, keeping the most recent
``reservoir_size`` observations.
"""

from __future__ import annotations

import math
import time

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "merge_states", "get_registry", "set_registry"]


class Counter:
    """Monotonically increasing event count.

    Mutations are gated by the owning registry's ``enabled`` flag; a
    disabled registry makes :meth:`inc` a two-instruction no-op.
    """

    __slots__ = ("name", "description", "_registry", "value")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None) -> None:
        self.name = name
        self.description = description
        self._registry = registry
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1); negative increments are refused."""
        if self._registry is not None and not self._registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-safe state: ``{"type", "value"}``."""
        return {"type": "counter", "value": self.value}

    def dump(self) -> dict:
        """Full merge-grade state (same as the snapshot for counters)."""
        return {"type": "counter", "value": self.value}

    def restore(self, state: dict) -> None:
        """Adopt a state produced by :meth:`dump` (or a merge of them)."""
        self.value = state["value"]


class Gauge:
    """Last-written value (fleet size, utilisation, hit rate).

    Each write stamps ``updated_s`` (wall clock), which is what makes
    cross-process merges well-defined: the *latest* write wins, no
    matter which process made it.
    """

    __slots__ = ("name", "description", "_registry", "value", "updated_s")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None) -> None:
        self.name = name
        self.description = description
        self._registry = registry
        self.value = 0.0
        self.updated_s = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge (and its last-write timestamp)."""
        if self._registry is not None and not self._registry.enabled:
            return
        self.value = float(value)
        self.updated_s = time.time()

    def snapshot(self) -> dict:
        """JSON-safe state: ``{"type", "value"}`` (exporter view)."""
        return {"type": "gauge", "value": self.value}

    def dump(self) -> dict:
        """Full merge-grade state: value plus last-write timestamp."""
        return {"type": "gauge", "value": self.value,
                "updated_s": self.updated_s}

    def restore(self, state: dict) -> None:
        """Adopt a state produced by :meth:`dump` (or a merge of them)."""
        self.value = float(state["value"])
        self.updated_s = float(state.get("updated_s", 0.0))


class Histogram:
    """Distribution with running stats and a bounded ring reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles are estimated from the last ``reservoir_size``
    observations (a sliding window — recent behaviour is what a monitor
    operator cares about), so memory stays bounded no matter how long a
    fleet run lasts.
    """

    __slots__ = ("name", "description", "_registry", "count", "sum",
                 "min", "max", "_ring", "_pos", "_size")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None,
                 reservoir_size: int = 256) -> None:
        if reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self.name = name
        self.description = description
        self._registry = registry
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._ring: list[float] = []
        self._pos = 0
        self._size = int(reservoir_size)

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self._registry is not None and not self._registry.enabled:
            return
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._ring) < self._size:
            self._ring.append(value)
        else:
            self._ring[self._pos] = value
            self._pos = (self._pos + 1) % self._size


    def quantile(self, q: float) -> float:
        """Reservoir quantile (nearest-rank); NaN while empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if not self._ring:
            return float("nan")
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(rank, 0)]

    @property
    def mean(self) -> float:
        """Arithmetic mean over every observation; NaN while empty."""
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        """JSON-safe state with count/sum/min/max/mean and quantiles."""
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.quantile(0.50),
            "p90": None if empty else self.quantile(0.90),
            "p99": None if empty else self.quantile(0.99),
            "reservoir_size": self._size,
        }

    def dump(self) -> dict:
        """Full merge-grade state, reservoir in chronological order.

        When the ring has wrapped, ``_pos`` points at the oldest slot,
        so the chronological view is ``ring[pos:] + ring[:pos]``; an
        unwrapped ring is already oldest-first.
        """
        if len(self._ring) < self._size:
            reservoir = list(self._ring)
        else:
            reservoir = self._ring[self._pos:] + self._ring[:self._pos]
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "reservoir": reservoir,
            "reservoir_size": self._size,
        }

    def restore(self, state: dict) -> None:
        """Adopt a state produced by :meth:`dump` (or a merge of them).

        The reservoir comes back oldest-first with ``_pos`` reset to 0,
        which preserves ring semantics: once full, the next observation
        overwrites the oldest entry.
        """
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = math.inf if state["min"] is None else float(state["min"])
        self.max = -math.inf if state["max"] is None else float(state["max"])
        size = int(state.get("reservoir_size", self._size))
        if size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self._size = size
        self._ring = [float(v) for v in state.get("reservoir", [])][-size:]
        self._pos = 0


def _merged_extreme(reduce_fn, a, b):
    """None-aware min/max over two optional extremes."""
    if a is None:
        return b
    if b is None:
        return a
    return reduce_fn(a, b)


def merge_states(a: dict | None, b: dict | None) -> dict | None:
    """Combine two instrument states from :meth:`dump` (``a`` then ``b``).

    The operation is associative with the empty state (``None``) as
    identity, so any fold order over any shard partition produces the
    same merged registry:

    - counters add;
    - gauges keep the later ``updated_s`` write (``b`` wins exact ties,
      which is what keeps ties associative);
    - histograms add count/sum, combine min/max, and concatenate the
      chronological reservoirs keeping the most recent
      ``max(reservoir_size)`` observations — last-K truncation composes,
      so the result is partition-invariant.

    Raises
    ------
    ConfigurationError
        On mismatched or unknown instrument types.
    """
    if a is None:
        return dict(b) if b is not None else None
    if b is None:
        return dict(a)
    kind = a.get("type")
    if kind != b.get("type"):
        raise ConfigurationError(
            f"cannot merge metric states of type {a.get('type')!r} "
            f"and {b.get('type')!r}")
    if kind == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if kind == "gauge":
        keep = b if b.get("updated_s", 0.0) >= a.get("updated_s", 0.0) else a
        return {"type": "gauge", "value": keep["value"],
                "updated_s": keep.get("updated_s", 0.0)}
    if kind == "histogram":
        size = max(int(a["reservoir_size"]), int(b["reservoir_size"]))
        reservoir = (list(a["reservoir"]) + list(b["reservoir"]))[-size:]
        return {
            "type": "histogram",
            "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"],
            "min": _merged_extreme(min, a["min"], b["min"]),
            "max": _merged_extreme(max, a["max"], b["max"]),
            "reservoir": reservoir,
            "reservoir_size": size,
        }
    raise ConfigurationError(f"unknown metric type {kind!r}")


class MetricsRegistry:
    """Name-keyed store of instruments with one master ``enabled`` flag.

    Instruments are get-or-create by dotted name; asking for an existing
    name with a different instrument kind raises
    :class:`~repro.errors.ConfigurationError` (silent type morphing
    would corrupt exports).  ``snapshot()`` returns a plain JSON-safe
    dict, the single interchange format both exporters consume.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            if not name or name != name.strip():
                raise ConfigurationError(f"bad metric name {name!r}")
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._get_or_create(
            name, lambda: Counter(name, description, self), Counter)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._get_or_create(
            name, lambda: Gauge(name, description, self), Gauge)

    def histogram(self, name: str, description: str = "",
                  reservoir_size: int = 256) -> Histogram:
        """Get-or-create a histogram."""
        return self._get_or_create(
            name, lambda: Histogram(name, description, self, reservoir_size),
            Histogram)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted.

        Reads work from an atomically-copied view of the instrument
        table, so a sampler thread (the live snapshot pipeline) can call
        this while hot paths register new instruments.
        """
        return tuple(sorted(dict(self._instruments)))

    def discard(self, name: str) -> bool:
        """Drop one instrument by name; True when it existed.

        Lets long-lived services retire per-cohort instruments when the
        cohort is discarded, keeping registry cardinality bounded.
        """
        return self._instruments.pop(name, None) is not None

    def snapshot(self) -> dict[str, dict]:
        """All instruments as ``{name: state}``, sorted by name."""
        instruments = dict(self._instruments)
        return {name: instruments[name].snapshot()
                for name in sorted(instruments)}

    def dump(self) -> dict[str, dict]:
        """Full merge-grade states as ``{name: state}``, sorted by name.

        Unlike :meth:`snapshot` (the exporter view), the dump carries
        everything :meth:`merge` needs: gauge timestamps and the full
        chronological histogram reservoirs.  Like :meth:`names`, it
        iterates an atomically-copied view, making it safe to call from
        a sampler thread while instruments register concurrently.
        """
        instruments = dict(self._instruments)
        return {name: instruments[name].dump()
                for name in sorted(instruments)}

    def merge(self, states) -> None:
        """Fold dumped states (``{name: state}``) into this registry.

        Accepts a plain mapping or anything exposing it as a
        ``metrics`` attribute (e.g.
        :class:`~repro.observability.remote.MetricsSnapshot`).  Missing
        instruments are created; existing ones combine through
        :func:`merge_states`.  Names are processed in sorted order, so
        the operation is deterministic, and it is an explicit
        aggregation step — it applies even while the registry is
        disabled (the harvested worker data already exists; dropping it
        silently would corrupt fleet totals).

        Raises
        ------
        ConfigurationError
            On a name already registered with a different instrument
            kind, or an unknown state type.
        """
        states = getattr(states, "metrics", states)
        for name in sorted(states):
            state = states[name]
            kind = state.get("type")
            if kind == "counter":
                instrument = self.counter(name)
            elif kind == "gauge":
                instrument = self.gauge(name)
            elif kind == "histogram":
                instrument = self.histogram(
                    name, reservoir_size=int(state.get("reservoir_size",
                                                       256)))
            else:
                raise ConfigurationError(
                    f"unknown metric type {kind!r} for {name!r}")
            instrument.restore(merge_states(instrument.dump(), state))

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._instruments.clear()


#: Process-wide default registry; disabled until the caller opts in.
_DEFAULT = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used by all instrumentation."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(registry, MetricsRegistry):
        raise ConfigurationError("set_registry needs a MetricsRegistry")
    _DEFAULT = registry
    return registry
