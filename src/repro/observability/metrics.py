"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the numerical backbone of the observability layer
(:mod:`repro.observability`): every instrumented hot path — batch-engine
chunks, session lifecycle stages, the calibration LRU, the scalar CTA
loop, telemetry framing — publishes into one
:class:`MetricsRegistry`.  Three instrument kinds cover the needs of the
reproduction:

- :class:`Counter` — monotone event counts (samples advanced, cache
  hits, dropped frames);
- :class:`Gauge` — last-written values (fleet size, hit rate);
- :class:`Histogram` — distributions with *bounded* memory: running
  count/sum/min/max plus a fixed-size ring reservoir of the most recent
  observations, from which quantiles are estimated.

Overhead discipline: instruments are created through the registry
(get-or-create by name) and every mutation first checks the registry's
``enabled`` flag — a single attribute load and branch — so a disabled
registry costs nanoseconds per call site and allocates nothing.  The
default registry starts **disabled**; observability is strictly opt-in
(see :func:`repro.observability.enable`).

Metric names are dotted lowercase paths with a unit suffix where
meaningful (``runtime.batch.chunk_s``, ``station.calibration_cache.hits``),
mirrored by the Prometheus exporter as underscore-separated names.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_registry", "set_registry"]


class Counter:
    """Monotonically increasing event count.

    Mutations are gated by the owning registry's ``enabled`` flag; a
    disabled registry makes :meth:`inc` a two-instruction no-op.
    """

    __slots__ = ("name", "description", "_registry", "value")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None) -> None:
        self.name = name
        self.description = description
        self._registry = registry
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1); negative increments are refused."""
        if self._registry is not None and not self._registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-safe state: ``{"type", "value"}``."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (fleet size, utilisation, hit rate)."""

    __slots__ = ("name", "description", "_registry", "value")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None) -> None:
        self.name = name
        self.description = description
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        if self._registry is not None and not self._registry.enabled:
            return
        self.value = float(value)

    def snapshot(self) -> dict:
        """JSON-safe state: ``{"type", "value"}``."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution with running stats and a bounded ring reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles are estimated from the last ``reservoir_size``
    observations (a sliding window — recent behaviour is what a monitor
    operator cares about), so memory stays bounded no matter how long a
    fleet run lasts.
    """

    __slots__ = ("name", "description", "_registry", "count", "sum",
                 "min", "max", "_ring", "_pos", "_size")

    def __init__(self, name: str, description: str = "",
                 registry: "MetricsRegistry | None" = None,
                 reservoir_size: int = 256) -> None:
        if reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self.name = name
        self.description = description
        self._registry = registry
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._ring: list[float] = []
        self._pos = 0
        self._size = int(reservoir_size)

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self._registry is not None and not self._registry.enabled:
            return
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._ring) < self._size:
            self._ring.append(value)
        else:
            self._ring[self._pos] = value
            self._pos = (self._pos + 1) % self._size


    def quantile(self, q: float) -> float:
        """Reservoir quantile (nearest-rank); NaN while empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if not self._ring:
            return float("nan")
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(rank, 0)]

    @property
    def mean(self) -> float:
        """Arithmetic mean over every observation; NaN while empty."""
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        """JSON-safe state with count/sum/min/max/mean and quantiles."""
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.quantile(0.50),
            "p90": None if empty else self.quantile(0.90),
            "p99": None if empty else self.quantile(0.99),
            "reservoir_size": self._size,
        }


class MetricsRegistry:
    """Name-keyed store of instruments with one master ``enabled`` flag.

    Instruments are get-or-create by dotted name; asking for an existing
    name with a different instrument kind raises
    :class:`~repro.errors.ConfigurationError` (silent type morphing
    would corrupt exports).  ``snapshot()`` returns a plain JSON-safe
    dict, the single interchange format both exporters consume.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            if not name or name != name.strip():
                raise ConfigurationError(f"bad metric name {name!r}")
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._get_or_create(
            name, lambda: Counter(name, description, self), Counter)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._get_or_create(
            name, lambda: Gauge(name, description, self), Gauge)

    def histogram(self, name: str, description: str = "",
                  reservoir_size: int = 256) -> Histogram:
        """Get-or-create a histogram."""
        return self._get_or_create(
            name, lambda: Histogram(name, description, self, reservoir_size),
            Histogram)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._instruments))

    def snapshot(self) -> dict[str, dict]:
        """All instruments as ``{name: state}``, sorted by name."""
        return {name: self._instruments[name].snapshot()
                for name in self.names()}

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._instruments.clear()


#: Process-wide default registry; disabled until the caller opts in.
_DEFAULT = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used by all instrumentation."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(registry, MetricsRegistry):
        raise ConfigurationError("set_registry needs a MetricsRegistry")
    _DEFAULT = registry
    return registry
