"""Lightweight span tracer with a context-manager API.

A *span* wraps one timed stage — a session calibration, a batch-engine
run, a fleet characterization — and records its wall-clock duration,
its parent (spans nest through a stack), and free-form tags.  Finished
spans land in a bounded deque and, when a metrics registry is attached,
also feed a ``span.<name>.s`` histogram so exporters see stage timings
without a separate pipeline.

Usage::

    tracer = get_tracer()
    with tracer.span("session.calibrate", n_monitors=16):
        ...

Disabled tracers hand out a shared no-op span, so an un-opted-in
process pays one attribute check per ``span()`` call and nothing else.

Trace context propagation: every span carries a ``trace_id`` (shared by
one tree), a ``span_id`` (unique per span) and a ``parent_id``.  Ids
are ``<pid>-<tracer>-<seq>`` hex strings — a process-id prefix plus two
monotone counters — so ids minted in different worker processes can
never collide without any randomness entering the picture.  A parent
process captures :meth:`Tracer.current_context` inside its enclosing
span, ships it to the worker, and the worker builds its tracer with
``parent_context=`` so its root spans nest under the remote parent.
Harvested worker records come home through :meth:`Tracer.absorb`, and
:func:`span_tree` reassembles the parent/child forest from any record
batch.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["SpanRecord", "Span", "TraceContext", "Tracer", "span_tree",
           "get_tracer", "set_tracer"]

#: Distinguishes tracers within one process (each mints its own span
#: sequence); combined with the pid prefix this keeps ids unique across
#: the whole sharded run.
_TRACER_SEQ = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The propagatable identity of a live span (trace id + span id).

    This is what travels to a worker process: the worker's root spans
    adopt ``trace_id`` and parent themselves under ``span_id``.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        """JSON-safe form (both fields are plain strings)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        """Rebuild from :meth:`to_dict` output.

        Raises
        ------
        ConfigurationError
            If either id is missing or not a non-empty string.
        """
        try:
            trace_id, span_id = data["trace_id"], data["span_id"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"trace context needs trace_id/span_id: {data!r}") from exc
        if not (isinstance(trace_id, str) and trace_id
                and isinstance(span_id, str) and span_id):
            raise ConfigurationError(
                f"trace context ids must be non-empty strings: {data!r}")
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted stage name (``session.run``, ``batch.run``).
    start_s / duration_s:
        ``time.perf_counter`` timestamps (relative origin, monotonic —
        and *per process*: starts from different processes are not
        comparable).
    parent:
        Enclosing span's name, or None at top level.
    tags:
        Free-form labels given at ``span()`` time.
    trace_id / span_id / parent_id:
        Propagated tree identity; ``parent_id`` is None for a root
        span, and may point at a span recorded in another process.
    """

    name: str
    start_s: float
    duration_s: float
    parent: str | None = None
    tags: dict = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str | None = None


class Span:
    """A live span; use as a context manager (or call finish())."""

    __slots__ = ("name", "tags", "trace_id", "span_id", "_tracer", "_start",
                 "_done", "_parent_name", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.trace_id = ""
        self.span_id = ""
        self._tracer = tracer
        self._start = 0.0
        self._done = False
        self._parent_name: str | None = None
        self._parent_id: str | None = None

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            self._parent_name, self._parent_id, self.trace_id = stack[-1]
        else:
            context = tracer._parent_context
            if context is not None:
                self._parent_id = context.span_id
                self.trace_id = context.trace_id
            else:
                self.trace_id = tracer._new_id()
        self.span_id = tracer._new_id()
        stack.append((self.name, self.span_id, self.trace_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def finish(self) -> None:
        """Close the span (idempotent); records duration and parent."""
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        if stack and stack[-1][1] == self.span_id:
            stack.pop()
        self._tracer._record(SpanRecord(
            name=self.name, start_s=self._start, duration_s=duration,
            parent=self._parent_name, tags=self.tags,
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self._parent_id))


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def finish(self) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and retains the most recent ``max_spans`` records.

    Parameters
    ----------
    registry:
        Metrics registry that receives ``span.<name>.s`` histograms;
        None uses the process default at finish time.
    max_spans:
        Bound on retained :class:`SpanRecord` history.
    enabled:
        Disabled tracers return a shared no-op span.
    parent_context:
        Remote :class:`TraceContext` adopted by spans opened with an
        empty stack (worker processes nest under the parent's span).
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 max_spans: int = 1024, enabled: bool = True,
                 parent_context: TraceContext | None = None) -> None:
        if max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1")
        if parent_context is not None and not isinstance(parent_context,
                                                         TraceContext):
            raise ConfigurationError(
                "parent_context must be a TraceContext")
        self.enabled = bool(enabled)
        self._registry = registry
        self._records: deque[SpanRecord] = deque(maxlen=int(max_spans))
        # Live nesting: (name, span_id, trace_id) per open span.
        self._stack: list[tuple[str, str, str]] = []
        self._parent_context = parent_context
        self._id_prefix = f"{os.getpid():x}-{next(_TRACER_SEQ):x}"
        self._id_seq = itertools.count(1)

    def _new_id(self) -> str:
        return f"{self._id_prefix}-{next(self._id_seq):x}"

    def span(self, name: str, **tags) -> Span | _NullSpan:
        """Open a span; use ``with tracer.span("stage"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, tags)

    def current_context(self) -> TraceContext | None:
        """The context a child process should nest under right now.

        Inside an open span that span's identity; outside any span the
        tracer's own ``parent_context`` (so nesting survives relays);
        None when disabled or at top level with no inherited context.
        """
        if not self.enabled:
            return None
        if self._stack:
            _, span_id, trace_id = self._stack[-1]
            return TraceContext(trace_id=trace_id, span_id=span_id)
        return self._parent_context

    def _record(self, record: SpanRecord) -> None:
        self._records.append(record)
        registry = self._registry or get_registry()
        if registry.enabled:
            registry.histogram(f"span.{record.name}.s").observe(
                record.duration_s)

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Append harvested remote records (no-op while disabled).

        Deliberately does *not* feed ``span.<name>.s`` histograms: the
        worker's own registry already observed those durations, and they
        arrive through the metrics merge — re-observing here would
        double-count every remote span.
        """
        if not self.enabled:
            return
        self._records.extend(records)

    def records(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self._records)
        return [r for r in self._records if r.name == name]

    def reset(self) -> None:
        """Drop retained spans and any dangling stack state."""
        self._records.clear()
        self._stack.clear()


def span_tree(records: Iterable[SpanRecord]) -> list[dict]:
    """Assemble records into a parent/child forest (roots returned).

    Each node is a plain dict — the record's fields plus ``children`` —
    so the tree is JSON-safe.  A record whose ``parent_id`` is absent
    from the batch becomes a root (e.g. worker spans whose parent lives
    in another harvest).  Children keep the order their records arrive
    in; ``start_s`` values from different processes have different
    origins, so the caller should not sort across processes by time.
    """
    nodes: dict[str, dict] = {}
    ordered: list[tuple[SpanRecord, dict]] = []
    for record in records:
        if not record.span_id:
            continue  # pre-propagation record (no identity to link by)
        node = {
            "name": record.name,
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "start_s": record.start_s,
            "duration_s": record.duration_s,
            "tags": dict(record.tags),
            "children": [],
        }
        nodes[record.span_id] = node
        ordered.append((record, node))
    roots: list[dict] = []
    for record, node in ordered:
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


#: Process-wide default tracer; disabled until the caller opts in.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer used by all instrumentation."""
    return _DEFAULT


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(tracer, Tracer):
        raise ConfigurationError("set_tracer needs a Tracer")
    _DEFAULT = tracer
    return tracer
