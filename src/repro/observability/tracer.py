"""Lightweight span tracer with a context-manager API.

A *span* wraps one timed stage — a session calibration, a batch-engine
run, a fleet characterization — and records its wall-clock duration,
its parent (spans nest through a stack), and free-form tags.  Finished
spans land in a bounded deque and, when a metrics registry is attached,
also feed a ``span.<name>.s`` histogram so exporters see stage timings
without a separate pipeline.

Usage::

    tracer = get_tracer()
    with tracer.span("session.calibrate", n_monitors=16):
        ...

Disabled tracers hand out a shared no-op span, so an un-opted-in
process pays one attribute check per ``span()`` call and nothing else.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["SpanRecord", "Span", "Tracer", "get_tracer", "set_tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted stage name (``session.run``, ``batch.run``).
    start_s / duration_s:
        ``time.perf_counter`` timestamps (relative origin, monotonic).
    parent:
        Enclosing span's name, or None at top level.
    tags:
        Free-form labels given at ``span()`` time.
    """

    name: str
    start_s: float
    duration_s: float
    parent: str | None = None
    tags: dict = field(default_factory=dict)


class Span:
    """A live span; use as a context manager (or call finish())."""

    __slots__ = ("name", "tags", "_tracer", "_start", "_done")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self._tracer = tracer
        self._start = 0.0
        self._done = False

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._tracer._stack.append(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def finish(self) -> None:
        """Close the span (idempotent); records duration and parent."""
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        parent = stack[-1] if stack else None
        self._tracer._record(SpanRecord(
            name=self.name, start_s=self._start, duration_s=duration,
            parent=parent, tags=self.tags))


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def finish(self) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and retains the most recent ``max_spans`` records.

    Parameters
    ----------
    registry:
        Metrics registry that receives ``span.<name>.s`` histograms;
        None uses the process default at finish time.
    max_spans:
        Bound on retained :class:`SpanRecord` history.
    enabled:
        Disabled tracers return a shared no-op span.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 max_spans: int = 1024, enabled: bool = True) -> None:
        if max_spans < 1:
            raise ConfigurationError("max_spans must be >= 1")
        self.enabled = bool(enabled)
        self._registry = registry
        self._records: deque[SpanRecord] = deque(maxlen=int(max_spans))
        self._stack: list[str] = []

    def span(self, name: str, **tags) -> Span | _NullSpan:
        """Open a span; use ``with tracer.span("stage"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, tags)

    def _record(self, record: SpanRecord) -> None:
        self._records.append(record)
        registry = self._registry or get_registry()
        if registry.enabled:
            registry.histogram(f"span.{record.name}.s").observe(
                record.duration_s)

    def records(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self._records)
        return [r for r in self._records if r.name == name]

    def reset(self) -> None:
        """Drop retained spans and any dangling stack state."""
        self._records.clear()
        self._stack.clear()


#: Process-wide default tracer; disabled until the caller opts in.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer used by all instrumentation."""
    return _DEFAULT


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(tracer, Tracer):
        raise ConfigurationError("set_tracer needs a Tracer")
    _DEFAULT = tracer
    return tracer
