"""Opt-in per-stage profiler: wall and CPU time attribution.

The metrics layer answers *how much work* ran; this module answers
*where the time went*.  A :class:`Profiler` accumulates per-stage
``{calls, wall_s, cpu_s}`` totals (wall from ``time.perf_counter``,
CPU from ``time.process_time``) for the kernel stages the batch engine
instruments — see
:data:`repro.runtime.kernels.PROFILE_STAGES` — and, when the metrics
registry is collecting, also feeds ``profile.<stage>.wall_s`` /
``profile.<stage>.cpu_s`` histograms so stage timings ride the normal
export pipeline.

Like every other sink in :mod:`repro.observability`, the process
default starts **disabled** and a disabled profiler costs one attribute
check per hook.  Enable it through
``observability.enable(profile=True)`` (or ``observed(profile=True)``),
read it back through :meth:`Profiler.report`,
``RunResult.profile()``, ``Session.stats()["profile"]`` or the CLI's
``--profile-out``.  Worker-side reports travel home inside the
telemetry harvest (:mod:`repro.observability.remote`) and fold in with
:meth:`Profiler.merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["Profiler", "get_profiler", "set_profiler"]


class Profiler:
    """Accumulates per-stage wall/CPU totals; all hooks gate on ``enabled``.

    Parameters
    ----------
    registry:
        Metrics registry that receives ``profile.<stage>.*`` histograms;
        None uses the process default at record time.  Histograms are
        only fed while that registry is itself enabled, so the profiler
        can run standalone (report only) or fully wired.
    enabled:
        Disabled profilers make :meth:`add` and :meth:`stage` no-ops.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._registry = registry
        self._stages: dict[str, dict] = {}

    def add(self, stage: str, wall_s: float, cpu_s: float = 0.0,
            calls: int = 1) -> None:
        """Accumulate one timed region into ``stage``.

        ``calls`` lets a hot loop batch many inner timings into one
        accumulate (the engine adds its per-sample film timings once per
        chunk).
        """
        if not self.enabled:
            return
        totals = self._stages.get(stage)
        if totals is None:
            if not stage or stage != stage.strip():
                raise ConfigurationError(f"bad stage name {stage!r}")
            totals = self._stages[stage] = {
                "calls": 0, "wall_s": 0.0, "cpu_s": 0.0}
        totals["calls"] += int(calls)
        totals["wall_s"] += float(wall_s)
        totals["cpu_s"] += float(cpu_s)
        registry = self._registry or get_registry()
        if registry.enabled:
            registry.histogram(f"profile.{stage}.wall_s").observe(wall_s)
            registry.histogram(f"profile.{stage}.cpu_s").observe(cpu_s)

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one region into ``name``."""
        if not self.enabled:
            yield
            return
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - wall0,
                     time.process_time() - cpu0)

    def report(self) -> dict[str, dict]:
        """``{stage: {calls, wall_s, cpu_s}}``, stages sorted by name."""
        return {name: dict(self._stages[name])
                for name in sorted(self._stages)}

    def merge(self, report: dict) -> None:
        """Fold a :meth:`report` (e.g. a worker's harvest) into this one.

        Accumulator-only on purpose: the worker's ``profile.*``
        histograms arrive through the metrics-snapshot merge, so
        re-observing them here would double-count.  No-op while
        disabled.
        """
        if not self.enabled:
            return
        for stage in sorted(report):
            values = report[stage]
            totals = self._stages.setdefault(
                stage, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0})
            totals["calls"] += int(values.get("calls", 0))
            totals["wall_s"] += float(values.get("wall_s", 0.0))
            totals["cpu_s"] += float(values.get("cpu_s", 0.0))

    def reset(self) -> None:
        """Drop every accumulated stage (test isolation)."""
        self._stages.clear()


#: Process-wide default profiler; disabled until the caller opts in.
_DEFAULT = Profiler(enabled=False)


def get_profiler() -> Profiler:
    """The process-wide default profiler used by all instrumentation."""
    return _DEFAULT


def set_profiler(profiler: Profiler) -> Profiler:
    """Swap the default profiler (returns it, for chaining)."""
    global _DEFAULT
    if not isinstance(profiler, Profiler):
        raise ConfigurationError("set_profiler needs a Profiler")
    _DEFAULT = profiler
    return profiler
