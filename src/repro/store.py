"""Disk-backed artifact store: persistent calibrations and checkpoints.

The in-process calibration LRU (:mod:`repro.station.scenarios`) dies
with the process, so every fresh worker re-pays a full §4 calibration
campaign.  :class:`ArtifactStore` is the durable layer underneath it: a
directory of versioned, atomically written artifacts keyed by the
canonical hash of everything that determines them (the configs'
``to_dict`` forms plus the scalar build knobs — see
:func:`canonical_key`).

Concurrency contract (the whole point of the design):

- **Writers** serialize the artifact to a private temporary file in the
  destination directory and publish it with ``os.replace`` — an atomic
  rename on POSIX and NT.  Two processes racing the same key both write
  complete artifacts; the loser's rename simply replaces the winner's
  identical bytes.  A reader can never observe a torn or partial file.
- **Readers** take no locks: they open the published path and validate
  the embedded header (magic, format version, kind, key).  A missing
  artifact is a *miss* (``None``); an invalid one raises
  :class:`~repro.errors.CheckpointError` (``reason="corrupt"`` /
  ``"version"``) — with atomic publication that only happens on
  external damage, never on a concurrent write.

Artifacts are pickled (they carry numpy arrays and RNG states);
the store is a cache of *self-produced* artifacts, not a decoder of
untrusted input — point it at a directory you own.

Observability: every lookup lands on the opt-in registry counters
``store.hits`` / ``store.misses``, writes on ``store.writes`` plus the
``store.write_s`` histogram; the same tallies are kept process-locally
in :meth:`ArtifactStore.stats` so tests and the CLI can read them
without enabling the registry.

A process-wide default store makes cross-process layering practical:
:func:`set_default_store` installs one explicitly, and the
``REPRO_STORE`` environment variable seeds it lazily — spawned workers
(e.g. :class:`~repro.runtime.parallel.ShardedEngine` shards, the
concurrent-store stress tests) inherit the variable and converge on
the same directory with no plumbing.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from pathlib import Path

from repro.errors import CheckpointError
from repro.observability import get_registry

__all__ = ["ArtifactStore", "canonical_key", "get_default_store",
           "set_default_store", "STORE_ENV", "STORE_FORMAT_VERSION"]

#: On-disk artifact format version; bumped on incompatible layout changes.
STORE_FORMAT_VERSION = 1

#: Header magic identifying a store artifact (torn/foreign-file guard).
_MAGIC = "repro-store"

#: Environment variable naming the default store directory.  Consulted
#: lazily by :func:`get_default_store`, so spawned worker processes
#: inherit the parent's store with no explicit plumbing.
STORE_ENV = "REPRO_STORE"


def canonical_key(payload) -> str:
    """Canonical hash of a JSON-able payload (the store's key function).

    The payload is serialized as canonical JSON (sorted keys, no
    whitespace variance, ``repr`` for anything non-JSON) and hashed
    with SHA-256; the first 16 hex digits are the key.  Two processes
    building the same configuration therefore derive the same key with
    no coordination — the same idiom as
    :func:`repro.runtime.mixed.config_group_key`.
    """
    blob = json.dumps(payload, sort_keys=True, default=repr,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class ArtifactStore:
    """A directory of versioned artifacts with atomic publication.

    Parameters
    ----------
    root:
        Store directory (created on first use).  Artifacts live at
        ``root/<kind>/<key>.pkl``; ``kind`` namespaces artifact types
        (``"calibration"``, ``"checkpoint"``, ...), ``key`` is a
        :func:`canonical_key` hash.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._writes = 0

    # -- read path (lock-free) ----------------------------------------------

    def get(self, kind: str, key: str):
        """The artifact stored under ``(kind, key)``, or None on a miss.

        Lock-free: reads only ever see fully published files (writers
        rename into place).  The embedded header is validated before
        the artifact is handed back.

        Raises
        ------
        CheckpointError
            ``reason="corrupt"`` if the file exists but is not a valid
            store artifact for this ``(kind, key)``;
            ``reason="version"`` if it was written by an incompatible
            store format version.
        """
        path = self._path(kind, key)
        registry = get_registry()
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._misses += 1
            if registry.enabled:
                registry.counter("store.misses").inc()
            return None
        record = self._decode(blob, path)
        if record["version"] != STORE_FORMAT_VERSION:
            raise CheckpointError(
                f"store artifact {path} has format version "
                f"{record['version']}; this library reads version "
                f"{STORE_FORMAT_VERSION}", reason="version")
        if record["kind"] != kind or record["key"] != key:
            raise CheckpointError(
                f"store artifact {path} is keyed ({record['kind']}, "
                f"{record['key']}), not ({kind}, {key})", reason="corrupt")
        self._hits += 1
        if registry.enabled:
            registry.counter("store.hits").inc()
        return record["artifact"]

    def contains(self, kind: str, key: str) -> bool:
        """Whether an artifact is published under ``(kind, key)``."""
        return self._path(kind, key).exists()

    # -- write path (atomic write-then-rename) -------------------------------

    def put(self, kind: str, key: str, artifact) -> Path:
        """Publish ``artifact`` under ``(kind, key)``; returns its path.

        The artifact is pickled into a private temporary file in the
        destination directory and renamed into place with
        ``os.replace`` — atomic, so concurrent readers never observe a
        torn file and racing writers of the same key converge on one
        valid artifact.
        """
        t0 = time.perf_counter()
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "magic": _MAGIC,
            "version": STORE_FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "artifact": artifact,
        }
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path.parent / f".tmp-{os.getpid()}-{id(record):x}-{path.name}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            # The replace consumed the temp file on success; only a
            # failed write leaves one behind.
            tmp.unlink(missing_ok=True)
        self._writes += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("store.writes").inc()
            registry.histogram("store.write_s").observe(
                time.perf_counter() - t0)
        return path

    # -- maintenance ----------------------------------------------------------

    def keys(self, kind: str) -> list[str]:
        """Published keys under ``kind``, sorted."""
        kind_dir = self.root / kind
        if not kind_dir.is_dir():
            return []
        return sorted(p.stem for p in kind_dir.glob("*.pkl"))

    def kinds(self) -> list[str]:
        """Artifact kinds present in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def inspect(self) -> list[dict]:
        """One dict per published artifact: kind, key, bytes, mtime."""
        entries = []
        for kind in self.kinds():
            for key in self.keys(kind):
                stat = self._path(kind, key).stat()
                entries.append({
                    "kind": kind,
                    "key": key,
                    "bytes": int(stat.st_size),
                    "mtime": float(stat.st_mtime),
                })
        return entries

    def evict(self, kind: str | None = None, key: str | None = None) -> int:
        """Remove artifacts; returns how many were deleted.

        With no arguments the whole store is emptied; ``kind`` narrows
        to one namespace, ``kind`` + ``key`` to one artifact.

        Raises
        ------
        CheckpointError
            If ``key`` is given without ``kind`` (a key only means
            something inside its namespace).
        """
        if key is not None and kind is None:
            raise CheckpointError("evicting by key requires kind too")
        removed = 0
        for entry_kind in ([kind] if kind is not None else self.kinds()):
            for entry_key in self.keys(entry_kind):
                if key is not None and entry_key != key:
                    continue
                self._path(entry_kind, entry_key).unlink(missing_ok=True)
                removed += 1
        return removed

    def stats(self) -> dict:
        """Process-local lookup tallies: hits, misses, writes, hit rate."""
        lookups = self._hits + self._misses
        return {
            "root": str(self.root),
            "hits": self._hits,
            "misses": self._misses,
            "writes": self._writes,
            "hit_rate": self._hits / lookups if lookups else 0.0,
        }

    # -- internals -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        """The published path of ``(kind, key)``."""
        return self.root / kind / f"{key}.pkl"

    @staticmethod
    def _decode(blob: bytes, path: Path) -> dict:
        """Unpickle and header-check one artifact file."""
        try:
            record = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointError(
                f"store artifact {path} failed to deserialize: {exc}",
                reason="corrupt") from exc
        if not isinstance(record, dict) or record.get("magic") != _MAGIC:
            raise CheckpointError(
                f"{path} is not a repro store artifact", reason="corrupt")
        return record


#: The process-wide default store (None until configured).
_DEFAULT_STORE: ArtifactStore | None = None
_ENV_CHECKED = False


def set_default_store(store) -> ArtifactStore | None:
    """Install the process-wide default store; returns it.

    Accepts an :class:`ArtifactStore`, a path (a store is built over
    it), or None to clear.  The default store is what
    :func:`repro.station.scenarios.build_calibrated_monitor` layers
    under the in-process calibration LRU.
    """
    global _DEFAULT_STORE, _ENV_CHECKED
    if store is None or isinstance(store, ArtifactStore):
        _DEFAULT_STORE = store
    else:
        _DEFAULT_STORE = ArtifactStore(store)
    _ENV_CHECKED = True  # an explicit call overrides the environment
    return _DEFAULT_STORE


def get_default_store() -> ArtifactStore | None:
    """The process-wide default store, or None if none is configured.

    On first call, the ``REPRO_STORE`` environment variable seeds the
    default — the hand-off that lets spawned worker processes share
    the parent's store with no explicit plumbing.
    """
    global _DEFAULT_STORE, _ENV_CHECKED
    if _DEFAULT_STORE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        root = os.environ.get(STORE_ENV)
        if root:
            _DEFAULT_STORE = ArtifactStore(root)
    return _DEFAULT_STORE
