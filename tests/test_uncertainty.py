"""Tests for the analytic error budget (delta-method propagation)."""

import numpy as np
import pytest

from repro.analysis.uncertainty import (
    FitCovariance,
    error_budget,
    fit_kings_law_with_covariance,
    speed_uncertainty,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.physics.kings_law import KingsLaw

TRUE = KingsLaw(1.2e-3, 4.4e-3, 0.5)


def campaign(noise=1e-5, n_points=8, seed=0):
    rng = np.random.default_rng(seed)
    v = np.linspace(0.05, 2.5, n_points)
    g = TRUE.conductance(v) + rng.normal(0.0, noise, n_points)
    return v, g


def test_fit_recovers_and_covariance_positive():
    v, g = campaign()
    fit = fit_kings_law_with_covariance(v, g)
    assert fit.law.coeff_a == pytest.approx(TRUE.coeff_a, rel=0.05)
    assert fit.law.coeff_b == pytest.approx(TRUE.coeff_b, rel=0.02)
    assert fit.covariance[0, 0] > 0.0
    assert fit.covariance[1, 1] > 0.0
    # Symmetric and PSD.
    assert fit.covariance[0, 1] == pytest.approx(fit.covariance[1, 0])
    assert np.all(np.linalg.eigvalsh(fit.covariance) >= -1e-20)


def test_fit_validation():
    with pytest.raises(CalibrationError):
        fit_kings_law_with_covariance(np.array([1.0, 2.0]),
                                      np.array([1.0, 2.0]))


def test_covariance_shrinks_with_more_points():
    _, _ = campaign()
    few = fit_kings_law_with_covariance(*campaign(n_points=6, seed=1))
    many = fit_kings_law_with_covariance(*campaign(n_points=48, seed=1))
    assert many.covariance[1, 1] < few.covariance[1, 1]


def test_uncertainty_monte_carlo_agreement():
    """The delta-method sigma must match a Monte-Carlo inversion."""
    v, g = campaign(noise=2e-5, seed=3)
    fit = fit_kings_law_with_covariance(v, g)
    sigma_g = 3e-6
    v0 = 1.2
    analytic = speed_uncertainty(fit, v0, sigma_g)
    rng = np.random.default_rng(4)
    g0 = float(fit.law.conductance(v0))
    draws = g0 + rng.normal(0.0, sigma_g, 20000)
    v_draws = ((np.maximum(draws - fit.law.coeff_a, 0.0) / fit.law.coeff_b)
               ** (1.0 / fit.law.exponent))
    mc_noise_only = float(np.std(v_draws))
    # Analytic includes the calibration part too, so it must be >= the
    # noise-only MC but agree once that part is removed.
    dv_dg = 1.0 / (0.5 * fit.law.coeff_b * v0 ** (-0.5))
    assert mc_noise_only == pytest.approx(abs(dv_dg) * sigma_g, rel=0.05)
    assert analytic >= mc_noise_only * 0.99


def test_resolution_grows_with_speed_kings_compression():
    """The analytic budget reproduces E2's defining shape."""
    fit = fit_kings_law_with_covariance(*campaign(seed=5))
    sigma_g = 5e-6
    rows = error_budget(fit, np.array([0.05, 0.5, 1.25, 2.5]), sigma_g)
    totals = [r["total_3sigma_cmps"] for r in rows]
    assert all(b > a for a, b in zip(totals, totals[1:]))
    # And the magnitudes land in the paper's band for plausible noise.
    assert 0.05 < totals[0] < 2.0
    assert 0.5 < totals[-1] < 10.0


def test_budget_splits_noise_and_calibration():
    fit = fit_kings_law_with_covariance(*campaign(seed=6))
    rows = error_budget(fit, np.array([1.0]), 5e-6)
    row = rows[0]
    assert row["total_3sigma_cmps"] == pytest.approx(
        np.hypot(row["noise_3sigma_cmps"], row["calibration_3sigma_cmps"]),
        rel=1e-6)


def test_validation():
    fit = fit_kings_law_with_covariance(*campaign())
    with pytest.raises(ConfigurationError):
        speed_uncertainty(fit, -1.0, 1e-6)
    with pytest.raises(ConfigurationError):
        error_budget(fit, np.array([1.0]), 1e-6, full_scale_mps=0.0)
    with pytest.raises(ConfigurationError):
        FitCovariance(law=TRUE, covariance=np.zeros((3, 3)))
