"""Direct contract tests for the kernel layer (repro.runtime.kernels).

The golden traces pin the engine end to end; these tests pin the
kernels *on their own*:

- the exact-mode transcendentals (``exp_exact`` and its back-compat
  alias ``batch._vexp``, ``pow_exact``, ``pow10_exact``) are bitwise
  ``math.exp`` / ``**`` over a magnitude sweep that includes
  denormal-adjacent and large-negative arguments;
- ``film_conductance`` is bitwise the per-element scalar composition
  over :func:`repro.physics.water.film_properties_scalar`, for both
  the flat and the ``(2, N)`` joint-Horner shapes;
- the unified ``numerics=`` knob validates with a machine-readable
  ``reason`` on every surface and round-trips through ``to_dict`` /
  ``from_dict`` and pickling;
- fast mode stays within 1e-9 relative error of exact on every
  recorded field of a real engine run.
"""

import math
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import BatchEngine, RunResult, Session
from repro.runtime.batch import _vexp, run_batch
from repro.runtime.kernels import (NUMERICS_MODES, Numerics, exp_exact,
                                   film_conductance, pow10_exact, pow_exact,
                                   resolve_numerics)
from repro.runtime.parallel import ShardedEngine
from repro.physics.water import film_properties_scalar
from repro.station.profiles import staircase
from repro.station.scenarios import build_calibrated_monitor

#: Magnitude sweep for the exponential: large-negative (flushes to
#: zero), denormal-adjacent (results in the subnormal range), the
#: normal/denormal boundary, tiny, zero, and up to just below the
#: double overflow threshold (~709.78).
EXP_SWEEP = [
    -800.0, -746.0, -745.133, -744.4400719213812, -709.0, -708.3964185322641,
    -700.0, -500.0, -100.0, -30.0, -1.0, -1e-3, -1e-17, -1e-300,
    0.0, 1e-300, 1e-17, 1e-3, 1.0, 30.0, 100.0, 700.0, 709.0,
]


def test_exp_exact_bit_parity_over_magnitude_sweep():
    arg = np.array(EXP_SWEEP)
    expected = np.array([math.exp(x) for x in EXP_SWEEP])
    got = exp_exact(arg)
    assert got.dtype == np.float64
    assert got.tobytes() == expected.tobytes()


def test_exp_exact_preserves_shape_2d():
    arg = np.array(EXP_SWEEP[:6] + EXP_SWEEP[-6:]).reshape(2, 6)
    got = exp_exact(arg)
    assert got.shape == (2, 6)
    flat = np.array([math.exp(x) for x in arg.ravel().tolist()])
    assert got.ravel().tobytes() == flat.tobytes()


def test_vexp_is_the_exact_kernel():
    # The engine's historical name must keep pointing at the exact path.
    assert _vexp is exp_exact


def test_pow_exact_bit_parity():
    base = np.array([1e-30, 1e-17, 0.5, 1.0, 2.0, 10.0, 1e17, 1e100])
    for exponent in (0.20, 0.33, 0.5, 2.0, -1.5):
        expected = np.array([b ** exponent for b in base.tolist()])
        assert pow_exact(base, exponent).tobytes() == expected.tobytes()
    # Array exponent broadcast.
    exps = np.array([0.2, 0.33, 0.5, 1.0, 2.0, 3.0, 0.0, -1.0])
    expected = np.array([b ** e for b, e in zip(base.tolist(), exps.tolist())])
    assert pow_exact(base, exps).tobytes() == expected.tobytes()


def test_pow10_exact_bit_parity():
    arg = np.array([-300.0, -17.5, -1.0, 0.0, 0.30103, 2.5, 17.0, 300.0])
    expected = np.array([10.0 ** x for x in arg.tolist()])
    assert pow10_exact(arg).tobytes() == expected.tobytes()


# -- film conductance ---------------------------------------------------------

_DIAMETER = 12e-6
_LENGTH = 1.2e-3


def _scalar_film(v_eff: float, film_t: float) -> float:
    """The per-element scalar composition the kernel replaces."""
    k, nu_visc, pr = film_properties_scalar(film_t)
    re = v_eff * _DIAMETER / nu_visc
    nusselt = 0.42 * pr ** 0.20 + 0.57 * pr ** 0.33 * math.sqrt(re)
    return nusselt * k * math.pi * _LENGTH


def _film_cases():
    rng = np.random.default_rng(9)
    v = rng.uniform(1e-3, 3.0, size=14)
    t = rng.uniform(275.0, 372.0, size=14)
    return v, t


def test_film_conductance_bit_parity_flat():
    v, t = _film_cases()
    got = film_conductance(v, t, _DIAMETER, _LENGTH)
    expected = np.array([_scalar_film(float(a), float(b))
                         for a, b in zip(v.tolist(), t.tolist())])
    assert got.tobytes() == expected.tobytes()


def test_film_conductance_bit_parity_joint_horner():
    # The (2, N) shape takes the joint density/heat-capacity Horner
    # pass; it must carry the very same bits as the flat path.
    v, t = _film_cases()
    v2, t2 = v.reshape(2, 7), t.reshape(2, 7)
    got = film_conductance(v2, t2, _DIAMETER, _LENGTH)
    expected = np.array([_scalar_film(float(a), float(b))
                         for a, b in zip(v.tolist(), t.tolist())]).reshape(2, 7)
    assert got.tobytes() == expected.tobytes()


def test_film_conductance_accepts_boxed_geometry():
    # The engine passes 0-d arrays for the geometry; same bits as floats.
    v, t = _film_cases()
    boxed = film_conductance(v, t, np.asarray(_DIAMETER),
                             np.asarray(_LENGTH))
    plain = film_conductance(v, t, _DIAMETER, _LENGTH)
    assert boxed.tobytes() == plain.tobytes()


def test_film_conductance_fast_mode_close():
    v, t = _film_cases()
    exact = film_conductance(v, t, _DIAMETER, _LENGTH)
    fast = film_conductance(v, t, _DIAMETER, _LENGTH, fast=True)
    np.testing.assert_allclose(fast, exact, rtol=1e-12)


def test_film_conductance_range_guard():
    v = np.full(3, 0.5)
    bad = np.array([300.0, 300.0, 120.0])  # Celsius passed as K
    with pytest.raises(ConfigurationError):
        film_conductance(v, bad, _DIAMETER, _LENGTH)


# -- the numerics knob --------------------------------------------------------


def test_resolve_numerics_accepts_modes_and_policy():
    assert NUMERICS_MODES == ("exact", "fast")
    assert resolve_numerics("exact") == "exact"
    assert resolve_numerics("fast") == "fast"
    assert resolve_numerics(Numerics(mode="fast")) == "fast"
    assert Numerics().mode == "exact"
    assert not Numerics().fast
    assert Numerics(mode="fast").fast


@pytest.mark.parametrize("bad", ["turbo", "", "EXACT", None, 3])
def test_resolve_numerics_rejects_with_reason(bad):
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_numerics(bad)
    assert excinfo.value.reason == "numerics"


def test_numerics_policy_validates_and_serializes():
    with pytest.raises(ConfigurationError) as excinfo:
        Numerics(mode="bogus")
    assert excinfo.value.reason == "numerics"
    policy = Numerics(mode="fast")
    assert policy.to_dict() == {"mode": "fast"}
    assert Numerics.from_dict(policy.to_dict()) == policy
    with pytest.raises(ConfigurationError) as excinfo:
        Numerics.from_dict({})
    assert excinfo.value.reason == "numerics"
    copy = pickle.loads(pickle.dumps(policy))
    assert copy == policy and copy.fast


def test_engines_reject_unknown_numerics(shared_setup):
    # resolve_numerics runs before any rig is touched, so the shared
    # read-mostly rig is safe to pass.
    with pytest.raises(ConfigurationError) as excinfo:
        BatchEngine([shared_setup.rig], numerics="bogus")
    assert excinfo.value.reason == "numerics"
    with pytest.raises(ConfigurationError) as excinfo:
        ShardedEngine([shared_setup.rig], workers=1, numerics="bogus")
    assert excinfo.value.reason == "numerics"
    with pytest.raises(ConfigurationError) as excinfo:
        run_batch([shared_setup.rig], staircase([0.0, 50.0], dwell_s=0.5),
                  numerics="bogus")
    assert excinfo.value.reason == "numerics"


def test_session_run_validates_numerics():
    with Session(n_monitors=1, seed=42, fast_calibration=True) as session:
        session.calibrate()
        with pytest.raises(ConfigurationError) as excinfo:
            session.run(staircase([0.0, 50.0], dwell_s=0.5),
                        numerics="bogus")
        assert excinfo.value.reason == "numerics"
        # The scalar reference path *is* the exact contract; fast on it
        # is refused rather than silently ignored.
        with pytest.raises(ConfigurationError) as excinfo:
            session.run(staircase([0.0, 50.0], dwell_s=0.5),
                        engine="scalar", numerics="fast")
        assert excinfo.value.reason == "numerics"


# -- fast-mode engine parity --------------------------------------------------


def _mode_result(numerics: str) -> RunResult:
    rigs = [build_calibrated_monitor(seed=s, fast=True).rig for s in (55, 56)]
    return BatchEngine(rigs, numerics=numerics).run(
        staircase([0.0, 70.0, 160.0], dwell_s=0.6), record_every_n=20)


def test_fast_mode_within_1e9_of_exact():
    exact = _mode_result("exact")
    fast = _mode_result("fast")
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        a = np.asarray(getattr(exact, name))
        b = np.asarray(getattr(fast, name))
        assert a.shape == b.shape, name
        if np.issubdtype(a.dtype, np.floating):
            np.testing.assert_allclose(
                b, a, rtol=1e-9, atol=1e-12,
                err_msg=f"{name}: fast mode outside the 1e-9 contract")
        else:
            assert np.array_equal(a, b), f"{name}: integer trace differs"
