"""Unit tests for the IQ demodulator IP."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.demodulator import IQDemodulator

FS = 10_000.0


def tone(freq, amp, phase, n, fs=FS):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t + phase)


def test_validation():
    with pytest.raises(ConfigurationError):
        IQDemodulator(-1.0, 100.0)
    with pytest.raises(ConfigurationError):
        IQDemodulator(FS, 6000.0)  # above Nyquist
    with pytest.raises(ConfigurationError):
        IQDemodulator(FS, 100.0, bandwidth_hz=80.0)  # > f/2


def test_amplitude_recovery():
    demod = IQDemodulator(FS, 500.0, bandwidth_hz=5.0)
    demod.process(tone(500.0, 0.8, 0.3, 40_000))
    assert demod.amplitude == pytest.approx(0.8, rel=0.02)


def test_rejects_off_frequency_tone():
    demod = IQDemodulator(FS, 500.0, bandwidth_hz=5.0)
    demod.process(tone(800.0, 1.0, 0.0, 40_000))
    assert demod.amplitude < 0.05


def test_amplitude_in_noise():
    """Lock-in advantage: a buried tone is still measured accurately."""
    rng = np.random.default_rng(0)
    signal = tone(500.0, 0.1, 1.0, 80_000) + rng.normal(0.0, 0.5, 80_000)
    demod = IQDemodulator(FS, 500.0, bandwidth_hz=1.0)
    demod.process(signal)
    # SNR in: -14 dB; the 1 Hz ENBW recovers the tone within ~15 %.
    assert demod.amplitude == pytest.approx(0.1, rel=0.2)


def test_phase_recovery():
    for phase in [-1.0, 0.0, 0.7]:
        demod = IQDemodulator(FS, 500.0, bandwidth_hz=5.0)
        demod.process(tone(500.0, 1.0, phase, 40_000))
        # sin(wt + p) referenced against cos(wt): measured = p - pi/2.
        expected = phase - np.pi / 2.0
        measured = demod.phase_rad
        diff = np.angle(np.exp(1j * (measured - expected)))
        assert abs(diff) < 0.05


def test_reset():
    demod = IQDemodulator(FS, 500.0)
    demod.process(tone(500.0, 1.0, 0.0, 5000))
    demod.reset()
    assert demod.amplitude == 0.0
