"""Tests for the flow estimator (uses a real loop, short horizons)."""

import numpy as np
import pytest

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.physics.convection import derive_kings_coefficients
from repro.physics.kings_law import KingsLaw
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor


def make_estimator(bandwidth_hz=2.0, seed=21):
    """Estimator around a real loop with an idealised calibration."""
    sensor = MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(seed=seed)
    controller = CTAController(sensor, platform, CTAConfig())
    a, b, n = derive_kings_coefficients(sensor.config.geometry, 295.65)
    cal = FlowCalibration(law=KingsLaw(a, b, n), overtemperature_k=5.0)
    est = FlowEstimator(controller, cal,
                        EstimatorConfig(output_bandwidth_hz=bandwidth_hz,
                                        sample_rate_hz=1000.0))
    return controller, est


def test_config_validation():
    with pytest.raises(ConfigurationError):
        EstimatorConfig(output_bandwidth_hz=0.0)


def test_estimates_track_true_speed():
    controller, est = make_estimator()
    cond = FlowConditions(speed_mps=1.0)
    speed = 0.0
    for _ in range(3000):
        speed = est.update(controller.step(cond))
    # Idealised calibration + real parasitics: within ~20 %.
    assert speed == pytest.approx(1.0, rel=0.2)


def test_estimator_monotone_across_speeds():
    controller, est = make_estimator()
    readings = []
    for v in [0.2, 0.8, 1.6, 2.4]:
        est.reset()
        cond = FlowConditions(speed_mps=v)
        speed = 0.0
        for _ in range(2000):
            speed = est.update(controller.step(cond))
        readings.append(speed)
    assert all(b > a for a, b in zip(readings, readings[1:]))


def test_invalid_samples_freeze_output():
    from repro.conditioning.cta import LoopTelemetry
    controller, est = make_estimator()
    cond = FlowConditions(speed_mps=1.0)
    for _ in range(2000):
        tel = controller.step(cond)
        est.update(tel)
    frozen = est.value
    # Hand-craft an invalid telemetry with absurd supplies: must be ignored.
    fake = LoopTelemetry(time_s=0.0, supply_a_v=0.0, supply_b_v=0.0,
                         error_a_v=0.0, error_b_v=0.0, energised=False,
                         sample_valid=False, readout=tel.readout)
    assert est.update(fake) == frozen
    assert est.value == frozen


def test_narrow_filter_smooths_more():
    _, est_wide = make_estimator(bandwidth_hz=20.0, seed=5)
    controller_w = est_wide.controller
    _, est_narrow = make_estimator(bandwidth_hz=0.5, seed=5)
    controller_n = est_narrow.controller
    cond = FlowConditions(speed_mps=1.5)
    wide, narrow = [], []
    for _ in range(4000):
        wide.append(est_wide.update(controller_w.step(cond)))
        narrow.append(est_narrow.update(controller_n.step(cond)))
    # Compare passed noise power (sample-to-sample), not residual settling
    # drift: the narrow filter admits far less high-frequency turbulence.
    assert np.std(np.diff(narrow[2000:])) < 0.5 * np.std(np.diff(wide[2000:]))


def test_response_time_reporting():
    _, est = make_estimator(bandwidth_hz=0.1)
    # 5 % settling of a 0.1 Hz pole: ~4.8 s.
    assert est.response_time_s(0.05) == pytest.approx(4.77, rel=0.05)


def test_reset():
    controller, est = make_estimator()
    cond = FlowConditions(speed_mps=1.0)
    for _ in range(500):
        est.update(controller.step(cond))
    est.reset()
    assert est.value == 0.0
    assert est.direction.direction == 0
