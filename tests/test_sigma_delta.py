"""Unit tests for the behavioural and bit-true sigma-delta ADCs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc, SigmaDeltaModulator


def test_behavioral_validation():
    with pytest.raises(ConfigurationError):
        BehavioralAdc(vref_v=-1.0)
    with pytest.raises(ConfigurationError):
        BehavioralAdc(bits=30)
    with pytest.raises(ConfigurationError):
        BehavioralAdc(bits=16, enob=20.0)


def test_behavioral_transfer():
    adc = BehavioralAdc(vref_v=2.5, rng=np.random.default_rng(0))
    codes = [adc.convert(1.0) for _ in range(500)]
    mean_v = adc.to_volts(int(np.mean(codes)))
    assert mean_v == pytest.approx(1.0, abs=3 * adc.lsb_v)


def test_behavioral_clips_at_full_scale():
    adc = BehavioralAdc(vref_v=2.5)
    assert adc.convert(10.0) == 2**15 - 1
    assert adc.convert(-10.0) == -(2**15)


def test_behavioral_noise_matches_enob():
    enob = 14.0
    adc = BehavioralAdc(vref_v=2.5, enob=enob, rng=np.random.default_rng(1))
    codes = np.array([adc.convert(0.3) for _ in range(5000)])
    noise_v = np.std(codes) * adc.lsb_v
    expected = (2 * 2.5 / 2**16) / np.sqrt(12) * 2 ** (16 - enob)
    assert noise_v == pytest.approx(expected, rel=0.15)


def test_modulator_bitstream_mean_tracks_input():
    mod = SigmaDeltaModulator(vref_v=2.5)
    for target in [-0.5, 0.0, 0.7]:
        bits = mod.run(np.full(4000, target * 2.5))
        assert np.mean(bits[500:]) == pytest.approx(target, abs=0.02)


def test_modulator_output_is_plus_minus_one():
    mod = SigmaDeltaModulator()
    bits = mod.run(np.full(100, 0.5))
    assert set(np.unique(bits)).issubset({-1, 1})


def test_modulator_survives_overload():
    mod = SigmaDeltaModulator(vref_v=2.5)
    mod.run(np.full(1000, 10.0))  # hard overload
    mod.reset()
    bits = mod.run(np.full(4000, 0.25 * 2.5))
    assert np.mean(bits[500:]) == pytest.approx(0.25, abs=0.03)


def test_bit_true_adc_converges_to_input():
    adc = SigmaDeltaAdc(vref_v=2.5, osr=64, thermal_noise_v=0.0,
                        rng=np.random.default_rng(0))
    codes = [adc.convert(0.7) for _ in range(20)]
    settled = codes[5:]
    mean_v = np.mean(settled) * adc.lsb_v
    assert mean_v == pytest.approx(0.7, rel=0.01)


def test_bit_true_negative_input():
    adc = SigmaDeltaAdc(vref_v=2.5, osr=64, thermal_noise_v=0.0)
    codes = [adc.convert(-1.1) for _ in range(20)]
    mean_v = np.mean(codes[5:]) * adc.lsb_v
    assert mean_v == pytest.approx(-1.1, rel=0.01)


def test_bit_true_resolution_improves_with_osr():
    def noise_at(osr):
        adc = SigmaDeltaAdc(vref_v=2.5, osr=osr, thermal_noise_v=0.0,
                            rng=np.random.default_rng(2))
        codes = np.array([adc.convert(0.31) for _ in range(120)])
        return np.std(codes[20:])

    assert noise_at(128) < noise_at(16)


def test_bit_true_validation():
    with pytest.raises(ConfigurationError):
        SigmaDeltaAdc(osr=4)


def test_behavioral_and_bit_true_agree_on_dc():
    """E13 property: both ADC models report the same DC value."""
    beh = BehavioralAdc(vref_v=2.5, rng=np.random.default_rng(3))
    bt = SigmaDeltaAdc(vref_v=2.5, osr=128, rng=np.random.default_rng(4))
    x = 0.42
    v_beh = np.mean([beh.to_volts(beh.convert(x)) for _ in range(200)])
    v_bt = np.mean([bt.to_volts(bt.convert(x)) for _ in range(60)][10:])
    assert v_beh == pytest.approx(x, abs=1e-3)
    assert v_bt == pytest.approx(x, abs=1e-2)
