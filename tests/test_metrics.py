"""Unit tests for the §5 metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    FULL_SCALE_MPS,
    accuracy_rms,
    repeatability_pct_fs,
    resolution_3sigma,
    resolution_pct_fs,
    settling_time_s,
)
from repro.errors import ConfigurationError


def test_resolution_definition():
    rng = np.random.default_rng(0)
    readings = 1.0 + 0.01 * rng.normal(size=5000)
    assert resolution_3sigma(readings) == pytest.approx(0.03, rel=0.05)


def test_resolution_pct_fs():
    rng = np.random.default_rng(1)
    readings = 1.0 + 0.01 * rng.normal(size=5000)
    # 3 sigma = 0.03 m/s over 2.5 m/s FS = 1.2 %.
    assert resolution_pct_fs(readings) == pytest.approx(1.2, rel=0.05)
    assert FULL_SCALE_MPS == 2.5


def test_resolution_needs_samples():
    with pytest.raises(ConfigurationError):
        resolution_3sigma(np.array([1.0, 2.0]))


def test_repeatability_half_spread():
    means = np.array([1.00, 1.02, 0.99, 1.01])
    # (1.02 - 0.99)/2 / 2.5 * 100 = 0.6 %.
    assert repeatability_pct_fs(means) == pytest.approx(0.6)


def test_accuracy_rms():
    m = np.array([1.0, 1.1, 0.9])
    r = np.array([1.0, 1.0, 1.0])
    assert accuracy_rms(m, r) == pytest.approx(np.sqrt(0.02 / 3))
    with pytest.raises(ConfigurationError):
        accuracy_rms(m, r[:2])


def test_settling_time():
    t = np.linspace(0.0, 10.0, 1001)
    x = 1.0 - np.exp(-t / 1.0)
    # 5 % band entered at t = -ln(0.05) ~ 3.0 s.
    assert settling_time_s(t, x, 1.0, 0.05) == pytest.approx(3.0, abs=0.05)


def test_settling_time_never_settles():
    t = np.linspace(0.0, 10.0, 101)
    x = np.sin(t)  # oscillates around 0 with amplitude 1
    with pytest.raises(ConfigurationError):
        settling_time_s(t, x, 1.0, 0.05)


def test_settling_time_immediate():
    t = np.linspace(0.0, 1.0, 11)
    x = np.ones(11)
    assert settling_time_s(t, x, 1.0) == 0.0
