"""Tests for the bandgap reference and the ratiometric property."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.reference import BandgapReference, ratiometric_gain_error


def test_validation():
    with pytest.raises(ConfigurationError):
        BandgapReference(nominal_v=0.0)
    with pytest.raises(ConfigurationError):
        BandgapReference(tolerance=0.5)


def test_trim_error_within_tolerance():
    for seed in range(20):
        ref = BandgapReference(tolerance=0.005, seed=seed)
        assert abs(ref.gain_error_fraction()) <= 0.005 + 1e-12


def test_tempco_drift():
    ref = BandgapReference(tempco_ppm_per_k=25.0, seed=1)
    e_cold = ref.gain_error_fraction()
    ref.die_temperature_k = 298.15 + 20.0
    e_hot = ref.gain_error_fraction()
    assert e_hot - e_cold == pytest.approx(20 * 25e-6, rel=1e-6)


def test_noise_statistics():
    ref = BandgapReference(noise_uv_rms=30.0, seed=2)
    samples = np.array([ref.value_v(noisy=True) for _ in range(20000)])
    assert np.std(samples) == pytest.approx(30e-6, rel=0.05)


def test_shared_reference_cancels_exactly():
    """Ratiometric design: one bandgap feeding ADC and DAC scales means
    zero net gain error regardless of its absolute error."""
    ref = BandgapReference(tolerance=0.005, seed=3)
    assert ratiometric_gain_error(ref, ref) == pytest.approx(0.0, abs=1e-15)
    # Even when the die heats: both scales move together.
    ref.die_temperature_k = 330.0
    assert ratiometric_gain_error(ref, ref) == pytest.approx(0.0, abs=1e-15)


def test_independent_references_leave_mismatch():
    adc_ref = BandgapReference(tolerance=0.005, seed=4)
    dac_ref = BandgapReference(tolerance=0.005, seed=5)
    err = ratiometric_gain_error(adc_ref, dac_ref)
    assert abs(err) > 1e-4     # two independent draws rarely match
    assert abs(err) < 0.011    # bounded by the sum of tolerances


def test_temperature_gradient_breaks_ratiometry_gently():
    """Same design reference but different die temperatures (analog vs
    digital corners of the floorplan): only the *tempco mismatch* of
    the gradient survives — tiny, but nonzero."""
    adc_ref = BandgapReference(seed=6)
    dac_ref = BandgapReference(seed=6)  # identical trim (same design draw)
    dac_ref.die_temperature_k = adc_ref.die_temperature_k + 5.0
    err = ratiometric_gain_error(adc_ref, dac_ref)
    assert abs(err) == pytest.approx(5 * 25e-6, rel=0.01)
