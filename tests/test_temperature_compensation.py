"""Tests for the King's-law temperature-compensation extension.

The paper notes the eq. (2) constants are "ambient specific"; this
extension re-references them to the live fluid temperature tracked
through Rt (bench E9 quantifies the payoff).
"""

import numpy as np
import pytest

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
from repro.errors import CalibrationError
from repro.physics.kings_law import KingsLaw
from repro.sensor.maf import FlowConditions
from repro.station.scenarios import build_calibrated_monitor

LAW = KingsLaw(coeff_a=1.2e-3, coeff_b=4.4e-3, exponent=0.5)


def make_cal(**kw):
    defaults = dict(law=LAW, overtemperature_k=5.0,
                    fluid_temperature_k=288.15,
                    reference_resistance_ohm=2000.0)
    defaults.update(kw)
    return FlowCalibration(**defaults)


def test_fluid_temperature_from_rt_roundtrip():
    cal = make_cal()
    # Rt 1 % high = +2.857 K at alpha 3.5e-3.
    t = cal.fluid_temperature_from_rt(2020.0)
    assert t == pytest.approx(288.15 + 0.01 / 3.5e-3, rel=1e-6)
    assert cal.fluid_temperature_from_rt(2000.0) == pytest.approx(288.15)
    with pytest.raises(CalibrationError):
        cal.fluid_temperature_from_rt(-1.0)


def test_compensation_identity_at_calibration_temperature():
    cal = make_cal()
    g = cal.conductance_from_speed(1.0)
    compensated = cal.compensate_conductance(g, cal.fluid_temperature_k)
    assert compensated == pytest.approx(g, rel=1e-9)


def test_compensation_shrinks_warm_water_gain():
    """Warmer water conducts better (higher G at the same v); the
    compensator maps the inflated G back toward the calibration curve."""
    cal = make_cal()
    g = cal.conductance_from_speed(1.0) * 1.05  # warm-water inflated
    compensated = cal.compensate_conductance(g, 298.15)
    assert compensated < g


def test_serialisation_keeps_anchor_fields():
    cal = make_cal(reference_resistance_ohm=2011.5)
    restored = FlowCalibration.from_dict(cal.to_dict())
    assert restored.reference_resistance_ohm == 2011.5
    assert restored.tcr_per_k == cal.tcr_per_k


def test_end_to_end_compensation_improves_warm_reading():
    setup = build_calibrated_monitor(seed=3, fast=True,
                                     use_pulsed_drive=False)
    controller = setup.monitor.controller
    warm = FlowConditions(speed_mps=1.0, temperature_k=298.15)

    def settled_reading(compensated: bool) -> tuple[float, float | None]:
        est = FlowEstimator(
            controller, setup.calibration,
            EstimatorConfig(output_bandwidth_hz=1.0, sample_rate_hz=1000.0,
                            temperature_compensation=compensated))
        v = 0.0
        for _ in range(6000):
            v = est.update(controller.step(warm))
        return v, est.fluid_temperature_k

    raw, t_raw = settled_reading(False)
    comp, t_comp = settled_reading(True)
    assert t_raw is None  # tracking only runs when enabled
    assert t_comp == pytest.approx(298.15, abs=0.5)  # Rt-tracked temperature
    err_raw = abs(raw - 1.0)
    err_comp = abs(comp - 1.0)
    assert err_comp < 0.6 * err_raw  # at least ~2x better


def test_monitor_config_passthrough(shared_setup):
    """MonitorConfig.temperature_compensation reaches the estimator."""
    from repro.conditioning.monitor import MonitorConfig, WaterFlowMonitor
    from repro.sensor.maf import MAFConfig, MAFSensor

    monitor = WaterFlowMonitor(
        MAFSensor(MAFConfig(seed=44)), shared_setup.calibration,
        MonitorConfig(use_pulsed_drive=False, temperature_compensation=True))
    assert monitor.estimator.config.temperature_compensation
    baseline = WaterFlowMonitor(
        MAFSensor(MAFConfig(seed=44)), shared_setup.calibration,
        MonitorConfig(use_pulsed_drive=False))
    assert not baseline.estimator.config.temperature_compensation


def test_calibration_records_reference_resistance(shared_setup):
    """run_calibration anchors Rt from the live campaign."""
    rt = shared_setup.calibration.reference_resistance_ohm
    true_r0 = shared_setup.monitor.sensor.reference.r0_ohm
    # Rt at the 15 C campaign vs R0 at the 20 C reference temperature:
    # expect the recorded value within ~2 % of the die's true resistor.
    assert rt == pytest.approx(true_r0, rel=0.03)