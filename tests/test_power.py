"""Unit tests for the power-state / battery model (E12 substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.isif.power import SECONDS_PER_YEAR, BatteryPack, PowerModel, PowerState


def test_validation():
    with pytest.raises(ConfigurationError):
        PowerModel(measure_current_a=-1.0)
    with pytest.raises(ConfigurationError):
        PowerModel(deep_sleep_current_a=1.0)  # ordering violated
    with pytest.raises(ConfigurationError):
        PowerModel(regulator_efficiency=0.0)
    with pytest.raises(ConfigurationError):
        BatteryPack(cells=0)


def test_state_currents_include_regulator_loss():
    pm = PowerModel(regulator_efficiency=0.5)
    assert pm.state_current_a(PowerState.MEASURE) == pytest.approx(
        pm.measure_current_a / 0.5)


def test_average_current_weighted():
    pm = PowerModel(regulator_efficiency=1.0)
    avg = pm.average_current_a([
        (PowerState.MEASURE, 1.0),
        (PowerState.DEEP_SLEEP, 9.0),
    ])
    expected = (pm.measure_current_a + 9 * pm.deep_sleep_current_a) / 10.0
    assert avg == pytest.approx(expected)


def test_average_current_validation():
    pm = PowerModel()
    with pytest.raises(ConfigurationError):
        pm.average_current_a([])
    with pytest.raises(ConfigurationError):
        pm.average_current_a([(PowerState.IDLE, -1.0)])


def test_duty_cycled_schedule():
    pm = PowerModel()
    avg = pm.duty_cycled_current_a(measure_s=2.0, period_s=600.0)
    # Sparse duty: average far below measure current, above sleep floor.
    assert avg < 0.01 * pm.state_current_a(PowerState.MEASURE)
    assert avg > pm.state_current_a(PowerState.DEEP_SLEEP)
    with pytest.raises(ConfigurationError):
        pm.duty_cycled_current_a(measure_s=10.0, period_s=5.0)


def test_battery_autonomy_math():
    pack = BatteryPack(cells=4, cell_capacity_ah=2.8, usable_fraction=1.0)
    # 2.8 Ah at 1 mA -> 2800 h.
    assert pack.autonomy_s(1e-3) == pytest.approx(2800 * 3600.0)


def test_paper_one_year_claim_reachable():
    """§7: 4 alkaline AA give one year at a typical duty cycle."""
    pm = PowerModel()
    pack = BatteryPack()
    avg = pm.duty_cycled_current_a(measure_s=2.0, period_s=900.0)
    years = pack.autonomy_years(avg)
    assert years > 1.0


def test_continuous_measurement_kills_the_battery_fast():
    pm = PowerModel()
    pack = BatteryPack()
    always_on = pm.average_current_a([(PowerState.MEASURE, 1.0)])
    assert pack.autonomy_years(always_on) < 0.05  # weeks, not a year


def test_autonomy_validation():
    with pytest.raises(ConfigurationError):
        BatteryPack().autonomy_s(0.0)
