"""Unit tests for the Wheatstone half-bridge model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sensor.bridge import WheatstoneBridge
from repro.sensor.resistor import SensingResistor


@pytest.fixture
def bridge():
    return WheatstoneBridge(SensingResistor(50.0), SensingResistor(2000.0))


def test_validation(bridge):
    with pytest.raises(ConfigurationError):
        WheatstoneBridge(SensingResistor(50.0), SensingResistor(2000.0),
                         r_series_ohm=-1.0)
    with pytest.raises(ConfigurationError):
        bridge.differential_v(-1.0, 50.0, 2000.0)
    with pytest.raises(ConfigurationError):
        bridge.differential_v(1.0, -50.0, 2000.0)


def test_balance_condition(bridge):
    """At Rh = Rs*Rt/Rtrim the differential must null exactly."""
    rt = 2000.0
    rh_bal = bridge.balance_resistance(rt)
    assert bridge.differential_v(3.0, rh_bal, rt) == pytest.approx(0.0, abs=1e-15)


def test_differential_sign_convention(bridge):
    """Hotter-than-setpoint heater (larger Rh) gives positive output."""
    rt = 2000.0
    rh_bal = bridge.balance_resistance(rt)
    assert bridge.differential_v(3.0, rh_bal * 1.02, rt) > 0.0
    assert bridge.differential_v(3.0, rh_bal * 0.98, rt) < 0.0


def test_trim_for_overtemperature(bridge):
    """After trimming, balance Rh equals the heater's target resistance."""
    d_t = 5.0
    bridge.trim_for_overtemperature(d_t)
    ambient = bridge.reference.reference_temperature_k
    rt_amb = float(bridge.reference.resistance(ambient))
    rh_bal = bridge.balance_resistance(rt_amb)
    assert rh_bal == pytest.approx(bridge.heater.target_resistance(d_t), rel=1e-12)


def test_balance_tracks_ambient():
    """CT property: when the fluid warms, the balance Rh rises so the
    overtemperature stays ~constant (same-TCR arms)."""
    heater = SensingResistor(50.0)
    ref = SensingResistor(2000.0)
    b = WheatstoneBridge(heater, ref)
    b.trim_for_overtemperature(5.0, ambient_k=288.15)
    rh_cold = b.balance_resistance(float(ref.resistance(288.15)))
    rh_warm = b.balance_resistance(float(ref.resistance(298.15)))
    t_cold = float(heater.temperature_from_resistance(rh_cold))
    t_warm = float(heater.temperature_from_resistance(rh_warm))
    dt_cold = t_cold - 288.15
    dt_warm = t_warm - 298.15
    assert dt_cold == pytest.approx(5.0, abs=0.05)
    assert dt_warm == pytest.approx(dt_cold, abs=0.25)  # small tracking error ok


def test_heater_power(bridge):
    u, rh = 3.0, 52.0
    i = u / (bridge.r_series_ohm + rh)
    assert bridge.heater_power_w(u, rh) == pytest.approx(i * i * rh)


def test_reference_self_heating_negligible(bridge):
    """The 2 kΩ arm must dissipate far less than the heater (its
    self-heating would corrupt the ambient reading)."""
    u = 3.0
    p_ref = bridge.reference_power_w(u, 2000.0)
    p_heat = bridge.heater_power_w(u, 52.0)
    assert p_ref < 0.1 * p_heat
    assert p_ref < 2e-3


def test_supply_current_sums_branches(bridge):
    u, rh, rt = 3.0, 52.0, 2000.0
    expected = u / (bridge.r_series_ohm + rh) + u / (bridge.r_trim_ohm + rt)
    assert bridge.total_supply_current_a(u, rh, rt) == pytest.approx(expected)


def test_leakage_shifts_balance(bridge):
    """A wet-packaging leakage path unbalances a previously nulled bridge."""
    rt = 2000.0
    rh_bal = bridge.balance_resistance(rt)
    clean = bridge.differential_v(3.0, rh_bal, rt)
    bridge.leakage_conductance_s = 1e-3  # 1 kOhm leak
    leaky = bridge.differential_v(3.0, rh_bal, rt)
    assert abs(leaky - clean) > 1e-3


def test_leakage_reduces_heater_current_share(bridge):
    bridge.leakage_conductance_s = 1e-3
    i_leaky = bridge.heater_current_a(3.0, 50.0)
    bridge.leakage_conductance_s = 0.0
    i_clean = bridge.heater_current_a(3.0, 50.0)
    assert i_leaky < i_clean


def test_zero_supply_gives_zero_everything(bridge):
    assert bridge.differential_v(0.0, 52.0, 2000.0) == 0.0
    assert bridge.heater_power_w(0.0, 52.0) == 0.0


@settings(max_examples=30)
@given(st.floats(min_value=0.1, max_value=5.0),
       st.floats(min_value=40.0, max_value=70.0))
def test_power_quadratic_in_supply(u, rh):
    b = WheatstoneBridge(SensingResistor(50.0), SensingResistor(2000.0))
    p1 = b.heater_power_w(u, rh)
    p2 = b.heater_power_w(2.0 * u, rh)
    assert p2 == pytest.approx(4.0 * p1, rel=1e-9)
