"""(Re)generate the golden-trace archives at fixed seeds.

Run from the repository root::

    PYTHONPATH=src python -m tests.golden.regen

Five archives pin the execution paths of the same physics:

- ``scalar_cta.npz`` — one rig through the per-sample scalar reference
  loop (``TestRig.run``, i.e. the CTA loop ticked in Python);
- ``batch_engine.npz`` — a three-rig fleet through the vectorized
  :class:`~repro.runtime.batch.BatchEngine`;
- ``sharded_engine.npz`` — the same fleet through the process-parallel
  :class:`~repro.runtime.parallel.ShardedEngine` (two workers);
- ``fast_engine.npz`` — the same fleet through the batch engine with
  ``numerics="fast"`` (vectorized transcendentals);
- ``mixed_fleet.npz`` — an interleaved two-config-group fleet through
  the group-by-config :class:`~repro.runtime.mixed.MixedEngine` (the
  ragged merge back into caller order).

Four more pin the checkpoint/resume path (``*_resume``): the same
cases advanced to step 737 (deliberately *not* a multiple of the
recording decimation, so the mid-window phase rides the checkpoint),
snapshotted through :func:`~repro.runtime.checkpoint.save_checkpoint` /
:func:`~repro.runtime.checkpoint.load_checkpoint` on disk, completed
from the restored engine and stitched.  Each must be byte-identical to
its uninterrupted sibling archive — asserted pairwise by
``tests/test_golden_traces.py`` via :data:`RESUME_PAIRS`.

The exact-mode cases are pure functions of their hard-coded seeds, so
regenerating on the same code produces byte-identical archives; the
test suite compares them byte for byte.  The fast case is additionally
subject to numpy's SIMD transcendentals, whose last-ulp rounding may
differ across builds, so ``tests/test_golden_traces.py`` holds it to a
1e-9 relative tolerance instead of bytes.  A diff against the
checked-in files therefore means the simulation's numerics changed —
commit regenerated archives only for *intentional* physics changes, and
say so in the commit message.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.runtime import BatchEngine, MixedEngine, RunResult, \
    ShardedEngine, load_checkpoint, save_checkpoint, spawn_monitor_seeds
from repro.station.profiles import staircase
from repro.station.rig import RigRecord
from repro.station.scenarios import build_calibrated_monitor

__all__ = ["GOLDEN_DIR", "CASES", "TOLERANT_CASES", "RESUME_PAIRS",
           "scalar_cta_case", "batch_engine_case", "sharded_engine_case",
           "fast_engine_case", "mixed_fleet_case", "scalar_resume_case",
           "batch_resume_case", "sharded_resume_case", "mixed_resume_case",
           "main"]

#: Directory holding the checked-in archives (this package).
GOLDEN_DIR = Path(__file__).resolve().parent

_SCALAR_SEED = 20080310  # DATE 2008 week, scalar case
_FLEET_SEED = 777
_FLEET_N = 3
_PROFILE = staircase([0.0, 60.0, 140.0], dwell_s=0.5)
_RECORD_EVERY_N = 20
_TOTAL_STEPS = 1500  # _PROFILE at the 1 kHz loop rate
# The resume cases cut here: NOT a multiple of _RECORD_EVERY_N, so the
# mid-window decimation phase has to survive the checkpoint round trip.
_RESUME_AT = 737


def _fleet_rigs():
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(_FLEET_SEED, _FLEET_N)]


def scalar_cta_case() -> dict[str, np.ndarray]:
    """One rig through the scalar CTA reference loop; RigRecord traces."""
    rig = build_calibrated_monitor(seed=_SCALAR_SEED, fast=True).rig
    record = rig.run(_PROFILE, record_every_n=_RECORD_EVERY_N)
    return {name: np.asarray(getattr(record, name))
            for name in RigRecord.FIELDS}


def batch_engine_case() -> dict[str, np.ndarray]:
    """Three rigs through the vectorized batch engine; RunResult traces."""
    result = BatchEngine(_fleet_rigs()).run(
        _PROFILE, record_every_n=_RECORD_EVERY_N)
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def sharded_engine_case() -> dict[str, np.ndarray]:
    """The same fleet through the sharded engine (two workers)."""
    result = ShardedEngine(_fleet_rigs(), workers=2).run(
        _PROFILE, record_every_n=_RECORD_EVERY_N)
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def fast_engine_case() -> dict[str, np.ndarray]:
    """The same fleet through the batch engine in fast numerics mode."""
    result = BatchEngine(_fleet_rigs(), numerics="fast").run(
        _PROFILE, record_every_n=_RECORD_EVERY_N)
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def mixed_fleet_case() -> dict[str, np.ndarray]:
    """Four rigs, two interleaved config groups, through the MixedEngine.

    Odd positions run at 7 K overtemperature, so the engine has to
    sub-batch per config group and interleave the ragged blocks back
    into caller order — this archive pins that merge (and the group
    engines under it) byte for byte.
    """
    seeds = spawn_monitor_seeds(_FLEET_SEED, 4)
    rigs = [build_calibrated_monitor(
                seed=s, fast=True,
                overtemperature_k=7.0 if i % 2 else 5.0).rig
            for i, s in enumerate(seeds)]
    result = MixedEngine(rigs).run(_PROFILE,
                                   record_every_n=_RECORD_EVERY_N)
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def _checkpoint_roundtrip(engine):
    """Snapshot ``engine`` to a real file and hand back the restored one."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "resume.ckpt"
        save_checkpoint(engine, path)
        return load_checkpoint(path).engine


def _fleet_resume(engine) -> dict[str, np.ndarray]:
    """Advance to the cut, checkpoint-roundtrip, finish, stitch."""
    first = engine.advance(_PROFILE, _RESUME_AT,
                           record_every_n=_RECORD_EVERY_N)
    restored = _checkpoint_roundtrip(engine)
    rest = restored.advance(_PROFILE, _TOTAL_STEPS - _RESUME_AT,
                            record_every_n=_RECORD_EVERY_N)
    result = RunResult.concat_time([first, rest])
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def scalar_resume_case() -> dict[str, np.ndarray]:
    """The scalar case cut at step 737, checkpointed, resumed, stitched."""
    rig = build_calibrated_monitor(seed=_SCALAR_SEED, fast=True).rig
    first = rig.advance(_PROFILE, _RESUME_AT,
                        record_every_n=_RECORD_EVERY_N)
    restored = _checkpoint_roundtrip(rig)
    rest = restored.advance(_PROFILE, _TOTAL_STEPS - _RESUME_AT,
                            record_every_n=_RECORD_EVERY_N)
    record = RigRecord.concat([first, rest])
    return {name: np.asarray(getattr(record, name))
            for name in RigRecord.FIELDS}


def batch_resume_case() -> dict[str, np.ndarray]:
    """The batch case cut at step 737, checkpointed, resumed, stitched."""
    return _fleet_resume(BatchEngine(_fleet_rigs()))


def sharded_resume_case() -> dict[str, np.ndarray]:
    """The sharded case cut at step 737, checkpointed, resumed, stitched."""
    return _fleet_resume(ShardedEngine(_fleet_rigs(), workers=2))


def mixed_resume_case() -> dict[str, np.ndarray]:
    """The mixed case cut at step 737, checkpointed, resumed, stitched."""
    seeds = spawn_monitor_seeds(_FLEET_SEED, 4)
    rigs = [build_calibrated_monitor(
                seed=s, fast=True,
                overtemperature_k=7.0 if i % 2 else 5.0).rig
            for i, s in enumerate(seeds)]
    return _fleet_resume(MixedEngine(rigs))


#: Archive stem -> case function; the single source of truth shared by
#: this regenerator and ``tests/test_golden_traces.py``.
CASES = {
    "scalar_cta": scalar_cta_case,
    "batch_engine": batch_engine_case,
    "sharded_engine": sharded_engine_case,
    "fast_engine": fast_engine_case,
    "mixed_fleet": mixed_fleet_case,
    "scalar_resume": scalar_resume_case,
    "batch_resume": batch_resume_case,
    "sharded_resume": sharded_resume_case,
    "mixed_resume": mixed_resume_case,
}

#: Resume stem -> uninterrupted sibling stem; each pair's archives must
#: be byte-identical (the checkpoint/resume parity contract).
RESUME_PAIRS = {
    "scalar_resume": "scalar_cta",
    "batch_resume": "batch_engine",
    "sharded_resume": "sharded_engine",
    "mixed_resume": "mixed_fleet",
}

#: Stems whose archives are compared with a tolerance rather than byte
#: for byte (numpy's vectorized transcendentals are build-dependent in
#: the last ulp).
TOLERANT_CASES = frozenset({"fast_engine"})


def main() -> int:
    """Regenerate every archive in :data:`GOLDEN_DIR`; returns 0."""
    for stem, case in CASES.items():
        path = GOLDEN_DIR / f"{stem}.npz"
        np.savez_compressed(path, **case())
        with np.load(path) as data:
            shapes = {k: data[k].shape for k in data.files}
        print(f"wrote {path.name}: {shapes}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
