"""Golden-trace regression fixtures for the anemometer runtime.

``regen.py`` (re)generates the checked-in ``*.npz`` archives at fixed
seeds; ``tests/test_golden_traces.py`` asserts the live code still
reproduces them byte for byte.  See ``docs/parallel.md`` for the regen
workflow.
"""
