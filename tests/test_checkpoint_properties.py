"""Property tests for the checkpoint/store durability contracts.

Hypothesis sweeps the spaces the example tests only sample:

- a run sliced at *arbitrary* cut points, each slice boundary crossed
  via a real on-disk ``save_checkpoint``/``load_checkpoint`` round
  trip, is byte-identical to the uninterrupted run (batch and mixed
  engines, and the scalar rig path);
- restoring one checkpoint *twice* yields two independent engines that
  finish identically (resume is idempotent — loading mutates nothing);
- the artifact store returns exactly what was put, and its canonical
  key function is invariant under dict ordering.

The fleets are tiny and the profile short so each example costs
milliseconds; the calibration LRU makes the repeated rig builds cheap.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import (BatchEngine, MixedEngine, RunResult,
                           load_checkpoint, save_checkpoint,
                           spawn_monitor_seeds)
from repro.station.profiles import staircase
from repro.station.rig import RigRecord
from repro.station.scenarios import build_calibrated_monitor
from repro.store import ArtifactStore, canonical_key

pytestmark = pytest.mark.durability

_PROFILE = staircase([0.0, 80.0], dwell_s=0.15)  # 300 steps at 1 kHz
_TOTAL = 300
_EVERY = 7  # deliberately not a divisor of the cut points drawn below

_SETTINGS = dict(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _rigs(n=2, base_seed=2468):
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(base_seed, n)]


def _bytes_of(result) -> dict[str, bytes]:
    return {name: np.asarray(getattr(result, name)).tobytes()
            for name in ("time_s",) + RunResult.STACKED_FIELDS}


def _roundtrip(engine):
    """One real on-disk checkpoint round trip; returns the restored engine."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "prop.ckpt"
        save_checkpoint(engine, path)
        return load_checkpoint(path).engine


_REFERENCES: dict[str, dict[str, bytes]] = {}


def _reference(kind: str) -> dict[str, bytes]:
    """The uninterrupted run's bytes, computed once per engine kind."""
    if kind not in _REFERENCES:
        engine = {"batch": lambda: BatchEngine(_rigs()),
                  "mixed": lambda: MixedEngine(_rigs())}[kind]()
        _REFERENCES[kind] = _bytes_of(
            engine.run(_PROFILE, record_every_n=_EVERY))
    return _REFERENCES[kind]


@settings(**_SETTINGS)
@given(cuts=st.lists(st.integers(1, _TOTAL - 1), unique=True,
                     min_size=1, max_size=4),
       kind=st.sampled_from(["batch", "mixed"]))
def test_arbitrary_cut_resume_is_uninterrupted(cuts, kind):
    """Any sequence of checkpoint cuts reproduces the uninterrupted run."""
    bounds = [0, *sorted(cuts), _TOTAL]
    engine = (BatchEngine(_rigs()) if kind == "batch"
              else MixedEngine(_rigs()))
    windows = []
    for lo, hi in zip(bounds, bounds[1:]):
        windows.append(engine.advance(_PROFILE, hi - lo,
                                      record_every_n=_EVERY))
        if hi < _TOTAL:
            engine = _roundtrip(engine)
    assert _bytes_of(RunResult.concat_time(windows)) == _reference(kind)


@settings(**_SETTINGS)
@given(cut=st.integers(1, _TOTAL - 1))
def test_scalar_cut_resume_is_uninterrupted(cut):
    """The scalar rig path honours the same cut-anywhere contract."""
    ref = build_calibrated_monitor(seed=1357, fast=True).rig.run(
        _PROFILE, record_every_n=_EVERY)
    rig = build_calibrated_monitor(seed=1357, fast=True).rig
    first = rig.advance(_PROFILE, cut, record_every_n=_EVERY)
    restored = _roundtrip(rig)
    rest = restored.advance(_PROFILE, _TOTAL - cut, record_every_n=_EVERY)
    stitched = RigRecord.concat([first, rest])
    for name in RigRecord.FIELDS:
        assert (np.asarray(getattr(stitched, name)).tobytes()
                == np.asarray(getattr(ref, name)).tobytes()), name


@settings(**_SETTINGS)
@given(cut=st.integers(1, _TOTAL - 1))
def test_double_resume_is_idempotent(cut):
    """One checkpoint restored twice finishes identically both times.

    Loading must not mutate the artifact or share state between the
    restored engines — each restore is a full independent copy.
    """
    engine = MixedEngine(_rigs())
    first = engine.advance(_PROFILE, cut, record_every_n=_EVERY)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "twice.ckpt"
        save_checkpoint(engine, path)
        blob_before = path.read_bytes()
        a = load_checkpoint(path).engine
        b = load_checkpoint(path).engine
        assert path.read_bytes() == blob_before
    rest_a = a.advance(_PROFILE, _TOTAL - cut, record_every_n=_EVERY)
    rest_b = b.advance(_PROFILE, _TOTAL - cut, record_every_n=_EVERY)
    bytes_a = _bytes_of(RunResult.concat_time([first, rest_a]))
    bytes_b = _bytes_of(RunResult.concat_time([first, rest_b]))
    assert bytes_a == bytes_b == _reference("mixed")


_json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12)


@settings(max_examples=40, deadline=None)
@given(payload=_json_values, artifact=_json_values)
def test_store_round_trip_identity(payload, artifact):
    """get(put(x)) == x for any key payload and pickled artifact."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        key = canonical_key(payload)
        assert key == canonical_key(payload)  # deterministic
        store.put("prop", key, artifact)
        assert store.get("prop", key) == artifact


@settings(max_examples=40, deadline=None)
@given(mapping=st.dictionaries(st.text(max_size=8), st.integers(),
                               min_size=2, max_size=6))
def test_canonical_key_ignores_insertion_order(mapping):
    reversed_order = dict(reversed(list(mapping.items())))
    assert canonical_key(mapping) == canonical_key(reversed_order)
