"""Scenario campaigns: demand generators, event injection, rollups.

The acceptance criteria for the campaign layer: a 3-scenario campaign
(baseline + tank_leak + mains_burst) runs from both the Python API and
the CLI, with the injected-event steps visible in the per-window
``run.*`` summary deltas; window slicing at event boundaries is
bit-exact against an uninterrupted run of the same execution group;
and scenario-bearing specs are refused everywhere else.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.runtime import FleetSpec, RigSpec, RunResult
from repro.station.campaign import (EVENT_KINDS, SCENARIO_NAMES, Event,
                                    ScenarioProfile, ScenarioSpec,
                                    builtin_scenario, household_demand,
                                    resolve_scenario, run_campaign,
                                    station_demand)

pytestmark = pytest.mark.scenario

_FAST = dict(use_pulsed_drive=False, fast_calibration=True)


def test_event_vocabulary_is_complete():
    assert set(EVENT_KINDS) == {"slab_leak", "tank_leak", "mains_burst",
                                "low_flow_trickle", "freeze",
                                "caco3_episode"}
    assert set(SCENARIO_NAMES) == set(EVENT_KINDS) | {"baseline"}


def test_event_validation_and_round_trip():
    event = Event(kind="tank_leak", at_s=2.0, duration_s=1.5, magnitude=2.0)
    assert Event.from_dict(event.to_dict()) == event
    with pytest.raises(ConfigurationError):
        Event(kind="meteor_strike", at_s=0.0, duration_s=1.0)
    with pytest.raises(ConfigurationError):
        Event(kind="freeze", at_s=-1.0, duration_s=1.0)
    with pytest.raises(ConfigurationError):
        Event(kind="freeze", at_s=0.0, duration_s=0.0)


def test_builtin_scenarios_place_events_inside_horizon():
    for name in SCENARIO_NAMES:
        scenario = builtin_scenario(name, duration_s=10.0)
        assert scenario.name == name
        for event in scenario.events:
            assert 0.0 <= event.at_s < 10.0
            assert event.at_s + event.duration_s <= 10.0
    assert builtin_scenario("baseline", 10.0).events == ()
    with pytest.raises(ConfigurationError):
        builtin_scenario("meteor_strike", 10.0)


def test_resolve_scenario_accepts_all_tag_forms():
    spec = ScenarioSpec(name="custom", events=(
        Event(kind="freeze", at_s=1.0, duration_s=0.5),))
    assert resolve_scenario(None, 4.0).name == "baseline"
    assert resolve_scenario("tank_leak", 4.0).name == "tank_leak"
    assert resolve_scenario(spec, 4.0) is spec


def test_event_effects_shift_the_setpoints():
    base = household_demand(4.0)
    quiet = ScenarioProfile(base, ())
    t = 1.5
    for kind in EVENT_KINDS:
        # The trickle is a *floor*; a household base load already sits
        # above 0.01 m/s, so push the floor up to see the effect.
        magnitude = 100.0 if kind == "low_flow_trickle" else 1.0
        noisy = ScenarioProfile(base, (Event(kind=kind, at_s=1.0,
                                             duration_s=1.0,
                                             magnitude=magnitude),))
        assert noisy.setpoints(t) != quiet.setpoints(t), kind
        # Outside the event window the base profile rules.
        assert noisy.setpoints(3.5) == quiet.setpoints(3.5), kind


def test_demand_generators_modulate_speed():
    for generator in (household_demand, station_demand):
        profile = generator(6.0, days=2)
        assert profile.duration_s == pytest.approx(6.0)
        assert profile.campaign_days == 2
        speeds = [profile.setpoints(t)[0]
                  for t in np.linspace(0.1, 5.9, 40)]
        assert min(speeds) > 0.0
        assert max(speeds) / min(speeds) > 1.3  # diurnal swing survives


def test_three_scenario_campaign_shows_event_deltas():
    spec = FleetSpec(
        rigs=(RigSpec(**_FAST),
              RigSpec(scenario="tank_leak", **_FAST),
              RigSpec(scenario="mains_burst", **_FAST)),
        seed=123)
    report = run_campaign(spec, duration_s=4.0)
    assert report.result.n_monitors == 3
    by_scenario = {g["scenario"]: g for g in report.groups}
    assert set(by_scenario) == {"baseline", "tank_leak", "mains_burst"}

    assert len(by_scenario["baseline"]["windows"]) == 1

    leak = by_scenario["tank_leak"]["windows"]
    active = [w for w in leak if "tank_leak" in w["active"]]
    assert len(active) == 1
    # The injected +0.02 m/s * magnitude demand step is visible in the
    # window's measured-speed delta vs the pre-event window.
    assert active[0]["deltas"]["run.measured_mps"] > 0.01

    burst = by_scenario["mains_burst"]["windows"]
    active = [w for w in burst if "mains_burst" in w["active"]]
    assert len(active) == 1
    assert active[0]["deltas"]["run.pressure_pa"] < -1e4

    assert report.days and report.days[0]["day"] == 0
    json.dumps(report.summary())  # JSON-safe digest


def test_campaign_windows_are_bit_exact_vs_uninterrupted_run():
    """Cutting a group at event boundaries must not perturb one bit:
    the stitched scenario trace equals the same rigs advanced through
    the identical ScenarioProfile in one uninterrupted run."""
    from repro.runtime import BatchEngine

    spec = FleetSpec(rigs=(RigSpec(scenario="tank_leak", **_FAST),),
                     seed=321)
    report = run_campaign(spec, duration_s=4.0)

    # The demand generator's segment list accumulates float dust, so
    # the campaign's true horizon is duration_s only approximately —
    # resolve the scenario against the profile's own duration exactly
    # as run_campaign does, or the event onset lands one tick away.
    base = household_demand(4.0)
    events = builtin_scenario("tank_leak", float(base.duration_s)).events
    profile = ScenarioProfile(base, events)
    rigs = spec.without_scenarios().materialize()
    whole = BatchEngine(rigs).run(profile,
                                  record_every_n=report.record_every_n)
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.asarray(getattr(report.result, name)).tobytes() == \
            np.asarray(getattr(whole, name)).tobytes(), name


def test_campaign_refusals():
    plain = FleetSpec(rigs=(RigSpec(**_FAST),), seed=1)
    with pytest.raises(ConfigurationError):
        run_campaign(plain)  # no horizon at all
    with pytest.raises(ConfigurationError):
        run_campaign(plain, duration_s=4.0, demand="industrial")
    with pytest.raises(ConfigurationError):
        run_campaign([object()], duration_s=4.0)  # not a FleetSpec
    with pytest.raises(ConfigurationError):
        run_campaign(plain, duration_s=3.0,
                     base_profile=household_demand(4.0))  # conflict


def test_cli_campaign_three_scenarios(tmp_path, capsys):
    out = tmp_path / "summary.json"
    code = main(["campaign", "--duration", "4",
                 "--scenarios", "baseline,tank_leak,mains_burst",
                 "--seed", "123", "--out", str(out)])
    assert code == 0
    text = capsys.readouterr().out
    assert "tank_leak" in text and "mains_burst" in text
    summary = json.loads(out.read_text())
    assert summary["n_monitors"] == 3
    deltas = [w["deltas"]["run.measured_mps"]
              for g in summary["groups"] if g["scenario"] == "tank_leak"
              for w in g["windows"] if "tank_leak" in w["active"]]
    assert deltas and deltas[0] > 0.01


def test_cli_campaign_rejects_unknown_scenario(capsys):
    assert main(["campaign", "--scenarios", "meteor_strike"]) == 2
    assert "meteor_strike" in capsys.readouterr().err


def test_cli_campaign_from_spec_file(tmp_path, capsys):
    spec = FleetSpec(rigs=(RigSpec(scenario="freeze", **_FAST),), seed=9)
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert main(["campaign", "--spec", str(path), "--duration", "4"]) == 0
    assert "freeze" in capsys.readouterr().out
