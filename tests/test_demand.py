"""Unit tests for the diurnal demand generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.station.demand import DiurnalDemand, DiurnalDemandShape


def test_validation():
    with pytest.raises(ConfigurationError):
        DiurnalDemandShape(night_floor=1.5)
    with pytest.raises(ConfigurationError):
        DiurnalDemandShape(morning_peak=0.5)
    with pytest.raises(ConfigurationError):
        DiurnalDemand(-1.0)
    with pytest.raises(ConfigurationError):
        DiurnalDemand(1.0).multiplier(-1.0)


def test_night_minimum_and_peaks():
    d = DiurnalDemand(1.0e-3, noise_fraction=0.0)
    night = d.multiplier(DiurnalDemand.NIGHT_H)
    morning = d.multiplier(DiurnalDemand.MORNING_H)
    evening = d.multiplier(DiurnalDemand.EVENING_H)
    assert night < 0.5  # the morning-peak tail adds a little at 03:00
    assert morning > 1.4
    assert evening > 1.2
    assert morning > evening  # shape default


def test_curve_is_24h_periodic():
    d = DiurnalDemand(1.0e-3, noise_fraction=0.0, weekend_factor=1.0)
    for h in [0.0, 5.5, 12.0, 21.25]:
        assert d.multiplier(h) == pytest.approx(d.multiplier(h + 24.0))


def test_weekend_scaling():
    d = DiurnalDemand(1.0e-3, noise_fraction=0.0, weekend_factor=1.2)
    weekday = d.multiplier(2 * 24.0 + 12.0)   # Wednesday noon
    weekend = d.multiplier(5 * 24.0 + 12.0)   # Saturday noon
    assert weekend == pytest.approx(1.2 * weekday)


def test_demand_scales_mean_and_stays_positive():
    d = DiurnalDemand(2.0e-3, noise_fraction=0.3, seed=1)
    values = [d.demand_m3_s(h) for h in np.linspace(0, 48, 500)]
    assert all(v >= 0.0 for v in values)
    assert 0.5e-3 < np.mean(values) < 4.0e-3


def test_deterministic_without_noise():
    a = DiurnalDemand(1.0e-3, noise_fraction=0.0)
    b = DiurnalDemand(1.0e-3, noise_fraction=0.0)
    assert a.demand_m3_s(13.7) == b.demand_m3_s(13.7)


def test_night_window_detection():
    d = DiurnalDemand(1.0e-3)
    assert d.is_night_window(3.0)
    assert d.is_night_window(27.2)
    assert not d.is_night_window(12.0)
