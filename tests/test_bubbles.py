"""Unit tests for the bubble-generation model (fig. 7 mechanism)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensor.bubbles import BubbleConfig, BubbleModel

BULK = 288.15
P_LINE = 3.0e5  # 2 bar gauge absolute-ish


def run(model, seconds, wall_t, powered=True, v=0.5, dt=0.01, pressure=P_LINE):
    for _ in range(int(seconds / dt)):
        model.step(dt, wall_t, BULK, pressure, v, powered)
    return model.coverage


def test_config_validation():
    with pytest.raises(ConfigurationError):
        BubbleConfig(nucleation_superheat_k=-1.0)
    with pytest.raises(ConfigurationError):
        BubbleConfig(vapor_conductance_fraction=1.5)
    with pytest.raises(ConfigurationError):
        BubbleConfig(noise_fraction=2.0)


def test_no_bubbles_below_nucleation_threshold():
    """Reduced overtemperature (the paper's water setting) stays clean."""
    m = BubbleModel()
    cov = run(m, 60.0, BULK + 5.0)
    assert cov == 0.0


def test_bubbles_grow_above_threshold():
    """Air-style high overtemperature under continuous drive fouls."""
    m = BubbleModel()
    cov = run(m, 60.0, BULK + 40.0)
    assert cov > 0.3


def test_boiling_accelerates_growth_at_low_pressure():
    m_low = BubbleModel()
    m_high = BubbleModel()
    wall = 385.0  # above 1 atm boiling, below 4 bar boiling
    bulk = 350.0  # superheat 35 K: past nucleation onset in both cases
    for _ in range(200):
        m_low.step(0.01, wall, bulk, 1.0e5, 0.5, True)
        m_high.step(0.01, wall, bulk, 4.0e5, 0.5, True)
    assert m_low.coverage > m_high.coverage


def test_unpowered_phase_detaches_bubbles():
    m = BubbleModel()
    run(m, 60.0, BULK + 40.0)
    grown = m.coverage
    run(m, 5.0, BULK, powered=False)
    assert m.coverage < 0.2 * grown


def test_shear_limits_coverage():
    slow = BubbleModel()
    fast = BubbleModel()
    run(slow, 60.0, BULK + 40.0, v=0.05)
    run(fast, 60.0, BULK + 40.0, v=2.0)
    assert fast.coverage < slow.coverage


def test_coverage_bounded():
    m = BubbleModel()
    cov = run(m, 600.0, BULK + 80.0, v=0.0, pressure=1.0e5)
    assert 0.0 <= cov < 1.0


def test_conductance_factor_clean_is_unity():
    m = BubbleModel()
    assert m.conductance_factor() == 1.0
    assert m.conductance_noise(1e-3) == 1.0


def test_conductance_factor_degrades_with_coverage():
    m = BubbleModel()
    run(m, 120.0, BULK + 45.0, v=0.05)
    assert m.conductance_factor() < 0.7
    # Noise becomes non-trivial too.
    samples = [m.conductance_noise(1e-3) for _ in range(200)]
    assert np.std(samples) > 0.01


def test_reset():
    m = BubbleModel()
    run(m, 60.0, BULK + 40.0)
    m.reset()
    assert m.coverage == 0.0


def test_invalid_dt():
    with pytest.raises(ConfigurationError):
        BubbleModel().step(0.0, 300.0, 290.0, 1e5, 0.1, True)
