"""Unit tests for the sensor housing / assembly model."""

import pytest

from repro.errors import ConfigurationError, SensorFault
from repro.sensor.packaging import HousingQuality, SensorHousing


def test_validation():
    with pytest.raises(ConfigurationError):
        SensorHousing(profile_smoothing=1.5)
    with pytest.raises(ConfigurationError):
        SensorHousing(pressure_rating_pa=0.0)


def test_prototype_leakage_negligible():
    """The glob-top + coated prototype: nS-range leakage forever."""
    h = SensorHousing()
    h.immerse(5000.0)
    assert h.leakage_conductance_s() < 1e-8


def test_bare_assembly_develops_leakage():
    h = SensorHousing(quality=HousingQuality.BARE)
    early = h.leakage_conductance_s()
    h.immerse(500.0)
    later = h.leakage_conductance_s()
    assert later > 10.0 * early
    assert later > 1e-4


def test_bare_assembly_corrodes_open():
    h = SensorHousing(quality=HousingQuality.BARE)
    with pytest.raises(SensorFault):
        h.immerse(2500.0)
    # Once corroded, any further immersion keeps failing.
    with pytest.raises(SensorFault):
        h.immerse(1.0)


def test_prototype_survives_long_immersion():
    """§5: 'no corrosion or pollution on the surface after several
    months of test'."""
    h = SensorHousing()
    h.immerse(6 * 30 * 24.0)  # six months
    assert h.immersion_hours == pytest.approx(4320.0)


def test_pressure_rating():
    h = SensorHousing()
    h.check_pressure(7.0e5)  # the paper's peaks: fine
    with pytest.raises(SensorFault):
        h.check_pressure(12.0e5)
    with pytest.raises(ConfigurationError):
        h.check_pressure(-1.0)


def test_smoothed_profile_perturbs_less():
    """'its profile has been smoothed to introduce low perturbations'."""
    smooth = SensorHousing(profile_smoothing=0.9)
    rough = SensorHousing(profile_smoothing=0.1)
    assert smooth.turbulence_multiplier() < rough.turbulence_multiplier()
    assert smooth.turbulence_multiplier() >= 1.0


def test_negative_immersion_rejected():
    with pytest.raises(ConfigurationError):
        SensorHousing().immerse(-1.0)


def test_hot_insertion_flag():
    assert SensorHousing().supports_hot_insertion
