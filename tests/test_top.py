"""`repro top` dashboard tests: pure rendering plus the poll loop.

``render_top`` is a pure function over ``/snapshot``/``/health``
payload dicts, so the layout is pinned without sockets; ``run_top`` is
exercised once against a real :class:`LiveServer` and once against a
dead port (the failure path must terminate with a nonzero code).
"""

import pytest

from repro import observability as obs
from repro.observability import EventLog, MetricsRegistry, Tracer
from repro.observability.live import LiveServer, SnapshotPipeline
from repro.observability.live.top import (fetch_frame, render_top,
                                          run_top)

pytestmark = pytest.mark.live


@pytest.fixture
def fresh():
    old_reg = obs.get_registry()
    old_tr = obs.get_tracer()
    old_log = obs.get_event_log()
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    yield registry, tracer, log
    obs.set_registry(old_reg)
    obs.set_tracer(old_tr)
    obs.set_event_log(old_log)


def sample(seq, t_s, *, delta=None, service=None):
    entry = {"seq": seq, "t_s": t_s, "delta": delta or {}, "extra": {}}
    if service is not None:
        entry["extra"]["service"] = service
    return entry


def group(gid, done, *, fleet=2, queue=1):
    return {"group_id": gid, "members": 1, "fleet_size": fleet,
            "sealed": True, "done_steps": done, "total_steps": 3000,
            "queue_depth": queue}


def test_render_empty_payloads_is_graceful():
    text = render_top({}, None)
    assert "repro top" in text
    assert "status: unknown" in text
    assert "no active cohorts" in text
    assert "tick latency: warming up" in text
    assert "worst rigs" not in text


def test_render_full_frame_rates_latency_and_worst_rigs():
    hist = {"type": "histogram", "count": 4, "sum": 0.02,
            "min": 0.004, "max": 0.007,
            "reservoir": [0.004, 0.005, 0.005, 0.007], "reservoir_size": 64}
    snapshot = {
        "count": 2, "retention": 240,
        "metrics": {},
        "samples": [
            sample(0, 10.0, service={"groups": [group(1, 700)]}),
            sample(1, 12.0,
                   delta={"service.samples":
                          {"type": "counter", "value": 2800},
                          "service.ticks": {"type": "counter", "value": 2},
                          "service.tick.wall_s": hist},
                   service={"groups": [group(1, 2100)]}),
        ],
    }
    health = {"status": "ok", "clients": 3, "groups": 1,
              "backpressure": {"stalls": 2, "ticks": 8, "saturation": 0.2},
              "worst_rigs": [
                  {"client": 4, "rig": 1, "score": 0.91, "status": "fault"},
                  {"client": 2, "rig": 0, "score": 0.05, "status": "healthy"},
              ]}
    text = render_top(snapshot, health, url="http://127.0.0.1:9")
    assert "repro top - http://127.0.0.1:9" in text
    assert "status: ok   clients: 3   groups: 1" in text
    assert "samples in ring: 2/240" in text
    assert "backpressure: stalls=2 saturation=20.0%" in text
    # counter deltas over the 2 s span: 2800/2 samples, 2/2 ticks
    assert "throughput: 1.4k samples/s   1 ticks/s" in text
    # nearest-rank percentiles of the freshest reservoir, in ms
    assert "tick p50 5.00 ms" in text and "p99 7.00 ms" in text
    # cohort row: (2100-700) steps x fleet 2 over 2 s = 1.4k samples/s
    assert "cohort" in text and "progress" in text
    row = next(line for line in text.splitlines()
               if line.strip().startswith("1 "))
    assert "2100/3000" in row and "1.4k" in row
    # worst rigs, highest score first
    assert "worst rigs (fused health score):" in text
    assert "client=4 rig=1 score=0.910 [fault]" in text


def test_render_single_sample_has_no_rates_yet():
    snapshot = {"count": 1, "retention": 240, "metrics": {},
                "samples": [sample(0, 1.0,
                                   service={"groups": [group(7, 100)]})]}
    text = render_top(snapshot, {"status": "ok"})
    assert "throughput: - samples/s" in text  # needs two samples for a rate
    row = next(line for line in text.splitlines()
               if line.strip().startswith("7 "))
    assert "100/3000" in row and row.rstrip().endswith("-")


def test_render_falls_back_to_cumulative_reservoir():
    snapshot = {"count": 1, "retention": 8,
                "metrics": {"service.tick.wall_s": {
                    "type": "histogram", "count": 1, "sum": 0.01,
                    "min": 0.01, "max": 0.01, "reservoir": [0.01],
                    "reservoir_size": 64}},
                "samples": [sample(0, 0.0)]}
    text = render_top(snapshot, {})
    assert "tick p50 10.00 ms" in text


def test_run_top_once_against_a_live_server(fresh):
    registry, _, _ = fresh
    registry.counter("service.samples").inc(100)
    pipe = SnapshotPipeline(registry=registry, clock=lambda: 0.0)
    pipe.sample()
    frames = []
    with LiveServer(registry=registry, pipeline=pipe,
                    health_source=lambda: {"status": "ok", "clients": 1,
                                           "groups": 0}) as server:
        frame = fetch_frame(server.url, last=3)
        code = run_top(server.url, once=True, out=frames.append,
                       clear=False)
    assert code == 0
    assert frame["health"]["status"] == "ok"
    assert frame["snapshot"]["count"] == 1
    assert len(frames) == 1
    assert "status: ok   clients: 1" in frames[0]
    assert "\x1b" not in frames[0]  # clear=False -> no ANSI control codes


def test_run_top_reports_fetch_failure_with_nonzero_exit():
    lines = []
    # A dead localhost port: connection refused on the first poll.
    code = run_top("http://127.0.0.1:9", once=True, out=lines.append,
                   clear=False)
    assert code == 1
    assert len(lines) == 1 and "fetch failed" in lines[0]
