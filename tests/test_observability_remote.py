"""Cross-process telemetry primitives: snapshot, merge, trace context.

Covers the merge-grade dump/restore path on the instruments, the
:class:`MetricsSnapshot` value type and its merge algebra edge cases,
trace-context propagation and span trees, the worker-side
install/harvest bracket run in-process, and the integral-float
round-trip fix in the Prometheus parser.  The hypothesis-powered
algebra properties live in ``test_observability_properties.py``.
"""

import json
import pickle

import pytest

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.observability import (EventLog, MetricsRegistry, MetricsSnapshot,
                                 Profiler, TelemetryHarvest, TelemetryRequest,
                                 TraceContext, Tracer, export_prometheus,
                                 export_spans_jsonl, harvest_worker_telemetry,
                                 install_worker_telemetry, merge_harvest,
                                 merge_states, parse_prometheus,
                                 parse_spans_jsonl, span_tree)


@pytest.fixture
def fresh():
    """Swap in fresh default sinks (all four); restore afterwards."""
    old = (obs.get_registry(), obs.get_tracer(), obs.get_event_log(),
           obs.get_profiler())
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(registry=registry, enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    profiler = obs.set_profiler(Profiler(registry=registry, enabled=True))
    yield registry, tracer, log, profiler
    obs.set_registry(old[0])
    obs.set_tracer(old[1])
    obs.set_event_log(old[2])
    obs.set_profiler(old[3])


def _sample_registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("t.counter").inc(3)
    registry.gauge("t.gauge").set(1.5)
    h = registry.histogram("t.hist", reservoir_size=4)
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    return registry


# -- instrument dump/restore --------------------------------------------------


def test_dump_restore_round_trip_counter_gauge_histogram():
    registry = _sample_registry()
    clone = MetricsRegistry(enabled=True)
    clone.merge(registry.dump())
    assert clone.dump() == registry.dump()
    assert clone.snapshot() == registry.snapshot()


def test_gauge_dump_carries_update_timestamp():
    registry = MetricsRegistry(enabled=True)
    g = registry.gauge("t.gauge")
    assert g.updated_s == 0.0
    g.set(2.0)
    assert g.updated_s > 0.0
    state = g.dump()
    assert state["updated_s"] == g.updated_s
    # The exporter-facing snapshot keeps its original shape.
    assert set(g.snapshot()) == {"type", "value"}


def test_histogram_dump_reservoir_is_chronological():
    registry = MetricsRegistry(enabled=True)
    h = registry.histogram("t.hist", reservoir_size=3)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        h.observe(v)
    state = h.dump()
    assert state["reservoir"] == [3.0, 4.0, 5.0]
    assert state["count"] == 5 and state["sum"] == 15.0
    assert state["min"] == 1.0 and state["max"] == 5.0


def test_empty_histogram_dump_has_none_extremes():
    registry = MetricsRegistry(enabled=True)
    state = registry.histogram("t.hist").dump()
    assert state["count"] == 0
    assert state["min"] is None and state["max"] is None
    assert state["reservoir"] == []


# -- merge_states semantics ---------------------------------------------------


def test_merge_states_none_is_identity():
    state = {"type": "counter", "value": 7}
    assert merge_states(state, None) == state
    assert merge_states(None, state) == state
    assert merge_states(None, None) is None


def test_merge_states_type_mismatch_raises():
    with pytest.raises(ConfigurationError):
        merge_states({"type": "counter", "value": 1},
                     {"type": "gauge", "value": 1.0, "updated_s": 0.0})


def test_merge_states_counter_adds():
    merged = merge_states({"type": "counter", "value": 3},
                          {"type": "counter", "value": 4})
    assert merged == {"type": "counter", "value": 7}


def test_merge_states_gauge_last_write_wins():
    older = {"type": "gauge", "value": 1.0, "updated_s": 10.0}
    newer = {"type": "gauge", "value": 2.0, "updated_s": 20.0}
    assert merge_states(older, newer)["value"] == 2.0
    assert merge_states(newer, older)["value"] == 2.0
    # Equal timestamps break right so the operation stays associative.
    tied = {"type": "gauge", "value": 9.0, "updated_s": 20.0}
    assert merge_states(newer, tied)["value"] == 9.0


def test_merge_states_histogram_truncates_reservoir_suffix():
    a = {"type": "histogram", "count": 3, "sum": 6.0, "min": 1.0,
         "max": 3.0, "reservoir_size": 4, "reservoir": [1.0, 2.0, 3.0]}
    b = {"type": "histogram", "count": 3, "sum": 18.0, "min": 4.0,
         "max": 9.0, "reservoir_size": 4, "reservoir": [4.0, 5.0, 9.0]}
    merged = merge_states(a, b)
    assert merged["count"] == 6 and merged["sum"] == 24.0
    assert merged["min"] == 1.0 and merged["max"] == 9.0
    assert merged["reservoir"] == [3.0, 4.0, 5.0, 9.0]


# -- MetricsSnapshot ----------------------------------------------------------


def test_snapshot_capture_and_names():
    snap = MetricsSnapshot.capture(_sample_registry())
    assert snap.names() == ("t.counter", "t.gauge", "t.hist")


def test_snapshot_empty_is_merge_identity():
    snap = MetricsSnapshot.capture(_sample_registry())
    assert snap.merge(MetricsSnapshot.empty()).metrics == snap.metrics
    assert MetricsSnapshot.empty().merge(snap).metrics == snap.metrics


def test_snapshot_merge_union_of_names():
    left = MetricsRegistry(enabled=True)
    left.counter("a").inc(1)
    left.counter("shared").inc(2)
    right = MetricsRegistry(enabled=True)
    right.counter("b").inc(5)
    right.counter("shared").inc(3)
    merged = MetricsSnapshot.capture(left).merge(MetricsSnapshot.capture(right))
    assert merged.names() == ("a", "b", "shared")
    assert merged.metrics["shared"]["value"] == 5


def test_snapshot_to_from_dict_round_trip():
    snap = MetricsSnapshot.capture(_sample_registry())
    data = json.loads(json.dumps(snap.to_dict()))
    assert MetricsSnapshot.from_dict(data).metrics == snap.metrics


def test_snapshot_from_dict_rejects_bad_payloads():
    with pytest.raises(ConfigurationError):
        MetricsSnapshot.from_dict({})
    with pytest.raises(ConfigurationError):
        MetricsSnapshot.from_dict({"metrics": {"x": {"type": "wat"}}})
    with pytest.raises(ConfigurationError):
        MetricsSnapshot.from_dict({"metrics": {"x": "not-a-dict"}})


def test_snapshot_pickles():
    snap = MetricsSnapshot.capture(_sample_registry())
    assert pickle.loads(pickle.dumps(snap)).metrics == snap.metrics


def test_registry_merge_creates_and_doubles():
    registry = _sample_registry()
    target = MetricsRegistry(enabled=True)
    target.merge(MetricsSnapshot.capture(registry))
    target.merge(MetricsSnapshot.capture(registry))
    snap = target.snapshot()
    assert snap["t.counter"]["value"] == 6
    assert snap["t.hist"]["count"] == 6 and snap["t.hist"]["sum"] == 12.0


def test_registry_merge_kind_conflict_raises():
    registry = MetricsRegistry(enabled=True)
    registry.counter("t.name").inc()
    other = MetricsRegistry(enabled=True)
    other.gauge("t.name").set(1.0)
    with pytest.raises(ConfigurationError):
        registry.merge(other.dump())


# -- trace context and span trees ---------------------------------------------


def test_trace_context_round_trip_and_validation():
    ctx = TraceContext(trace_id="t-1", span_id="s-1")
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    with pytest.raises(ConfigurationError):
        TraceContext.from_dict({"trace_id": "t-1"})
    with pytest.raises(ConfigurationError):
        TraceContext.from_dict({"trace_id": "", "span_id": "s"})


def test_span_ids_unique_and_nested(fresh):
    _, tracer, _, _ = fresh
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert outer.span_id != inner.span_id
    records = {r.name: r for r in tracer.records()}
    assert records["inner"].parent_id == records["outer"].span_id
    assert records["inner"].trace_id == records["outer"].trace_id
    assert records["outer"].parent_id is None


def test_parent_context_adopts_remote_identity(fresh):
    registry, _, _, _ = fresh
    ctx = TraceContext(trace_id="remote-trace", span_id="remote-span")
    worker = Tracer(registry=registry, parent_context=ctx)
    assert worker.current_context() == ctx
    with worker.span("child"):
        pass
    (record,) = worker.records()
    assert record.trace_id == "remote-trace"
    assert record.parent_id == "remote-span"


def test_current_context_tracks_stack(fresh):
    _, tracer, _, _ = fresh
    assert tracer.current_context() is None
    with tracer.span("stage") as span:
        ctx = tracer.current_context()
        assert ctx == TraceContext(trace_id=span.trace_id,
                                   span_id=span.span_id)
    assert tracer.current_context() is None
    tracer.enabled = False
    assert tracer.current_context() is None


def test_tracer_absorb_does_not_feed_histograms(fresh):
    registry, tracer, _, _ = fresh
    remote = Tracer(registry=MetricsRegistry(enabled=False))
    with remote.span("remote.stage"):
        pass
    tracer.absorb(remote.records())
    assert [r.name for r in tracer.records()] == ["remote.stage"]
    assert "span.remote.stage.s" not in registry.names()
    tracer.enabled = False
    tracer.absorb(remote.records())
    assert len(tracer.records()) == 1


def test_span_tree_nests_and_orphans_root(fresh):
    _, tracer, _, _ = fresh
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    worker = Tracer(parent_context=TraceContext(trace_id="x", span_id="gone"))
    with worker.span("orphan"):
        pass
    roots = span_tree(tracer.records() + worker.records())
    assert [n["name"] for n in roots] == ["root", "orphan"]
    assert [c["name"] for c in roots[0]["children"]] == ["child"]


def _span(name, span_id, parent_id=None, trace_id="t"):
    """A bare SpanRecord with explicit identity (forest-assembly tests)."""
    from repro.observability.tracer import SpanRecord
    return SpanRecord(name=name, start_s=0.0, duration_s=0.0, parent=None,
                      tags={}, trace_id=trace_id, span_id=span_id,
                      parent_id=parent_id)


def test_span_tree_assembles_out_of_order_batches():
    """Children arriving before their parents still nest correctly.

    Cross-process harvests interleave records arbitrarily — a worker's
    span can land in the batch ahead of the coordinator span that
    spawned it — so linking must be a two-pass operation.
    """
    records = [
        _span("grandchild", "c", parent_id="b"),
        _span("child", "b", parent_id="a"),
        _span("root", "a"),
    ]
    roots = span_tree(records)
    assert [n["name"] for n in roots] == ["root"]
    assert roots[0]["children"][0]["name"] == "child"
    assert roots[0]["children"][0]["children"][0]["name"] == "grandchild"


def test_span_tree_roots_orphans_and_skips_identityless_records():
    records = [
        _span("orphan", "x", parent_id="never-harvested"),
        _span("root", "a"),
        _span("", ""),  # pre-propagation record: no identity to link by
        _span("child", "b", parent_id="a"),
    ]
    roots = span_tree(records)
    assert [n["name"] for n in roots] == ["orphan", "root"]
    assert [c["name"] for c in roots[1]["children"]] == ["child"]
    # the identityless record is dropped, not rooted
    assert all(n["span_id"] for n in roots)


def test_span_tree_self_parent_becomes_a_root_not_a_cycle():
    records = [_span("loop", "a", parent_id="a"),
               _span("child", "b", parent_id="a")]
    roots = span_tree(records)
    assert [n["name"] for n in roots] == ["loop"]
    assert [c["name"] for c in roots[0]["children"]] == ["child"]


def test_span_tree_duplicate_span_ids_last_node_wins_linking():
    """Duplicate ids (a retried harvest) must not crash assembly."""
    records = [_span("first", "a"), _span("second", "a"),
               _span("child", "b", parent_id="a")]
    roots = span_tree(records)
    # both duplicates survive as nodes; the child hangs off the last one
    names = [n["name"] for n in roots]
    assert names == ["first", "second"]
    assert [c["name"] for c in roots[1]["children"]] == ["child"]


def test_span_jsonl_round_trip(fresh):
    _, tracer, _, _ = fresh
    with tracer.span("root", shard=1):
        with tracer.span("leaf"):
            pass
    records = tracer.records()
    parsed = parse_spans_jsonl(export_spans_jsonl(records))
    assert parsed == records
    with pytest.raises(ConfigurationError):
        parse_spans_jsonl("not json\n")


# -- worker bracket (in-process) ----------------------------------------------


def test_install_harvest_round_trip(fresh):
    registry, tracer, log, profiler = fresh
    registry.counter("pre.existing").inc(10)
    with tracer.span("shard.run"):
        request = TelemetryRequest(trace_context=tracer.current_context(),
                                   profile=True)
        previous = install_worker_telemetry(request)
        try:
            obs.get_registry().counter("runtime.batch.samples").inc(100)
            with obs.get_tracer().span("shard.worker", shard=0):
                pass
            obs.get_event_log().emit("worker.event", shard=0)
            obs.get_profiler().add("kernel.plan", 0.5, 0.25)
        finally:
            harvest = harvest_worker_telemetry(previous)
    # Defaults restored.
    assert obs.get_registry() is registry
    assert obs.get_tracer() is tracer
    assert obs.get_event_log() is log
    assert obs.get_profiler() is profiler
    # Fresh sinks: the pre-existing parent counter must not be in the
    # harvest (fork inheritance would double-count it on merge).
    assert "pre.existing" not in harvest.metrics.names()
    assert "runtime.batch.samples" in harvest.metrics.names()
    (worker_span,) = harvest.spans
    parent_record = tracer.records("shard.run")[0]
    assert worker_span.parent_id == parent_record.span_id
    assert worker_span.trace_id == parent_record.trace_id
    assert harvest.profile["kernel.plan"]["calls"] == 1
    merge_harvest(harvest)
    assert registry.snapshot()["runtime.batch.samples"]["value"] == 100
    assert registry.snapshot()["pre.existing"]["value"] == 10
    assert [e.name for e in log.events()] == ["worker.event"]
    assert profiler.report()["kernel.plan"]["wall_s"] == 0.5
    assert any(r.name == "shard.worker" for r in tracer.records())


def test_merge_harvest_respects_per_sink_opt_in(fresh):
    registry, tracer, log, profiler = fresh
    tracer.enabled = False
    log.enabled = False
    profiler.enabled = False
    worker = MetricsRegistry(enabled=True)
    worker.counter("w.counter").inc(4)
    remote_tracer = Tracer(registry=MetricsRegistry(enabled=False))
    with remote_tracer.span("w.span"):
        pass
    harvest = TelemetryHarvest(
        metrics=MetricsSnapshot.capture(worker),
        spans=tuple(remote_tracer.records()),
        events=(),
        profile={"kernel.plan": {"calls": 1, "wall_s": 1.0, "cpu_s": 1.0}})
    merge_harvest(harvest)
    assert registry.snapshot()["w.counter"]["value"] == 4
    assert tracer.records() == []
    assert profiler.report() == {}


def test_telemetry_harvest_pickles(fresh):
    _, tracer, _, _ = fresh
    with tracer.span("stage"):
        pass
    harvest = TelemetryHarvest(metrics=MetricsSnapshot.empty(),
                               spans=tuple(tracer.records()))
    clone = pickle.loads(pickle.dumps(harvest))
    assert clone.spans == harvest.spans


# -- prometheus integral-float round trip (satellite fix) ---------------------


def test_prometheus_preserves_value_types():
    registry = MetricsRegistry(enabled=True)
    registry.counter("c.int").inc(4)
    registry.counter("c.float").inc(2.5)
    registry.gauge("g.integral").set(4.0)
    parsed = parse_prometheus(export_prometheus(registry))
    assert parsed["c.int"]["value"] == 4
    assert isinstance(parsed["c.int"]["value"], int)
    assert parsed["c.float"]["value"] == 2.5
    # A gauge holding the integral float 4.0 must come back as a float,
    # not collapse to int (the old parser keyed int-ness off the value).
    assert parsed["g.integral"]["value"] == 4.0
    assert isinstance(parsed["g.integral"]["value"], float)
    assert parsed == parse_prometheus(export_prometheus(parsed))
