"""Integration: pipe network + leak detector (the §6 application)."""

import numpy as np
import pytest

from repro.conditioning.leak_detect import LeakDetector, NetworkSegmentMonitor
from repro.station.network import PipeNetwork


def build_monitored_network():
    """reservoir → A → B → C trunk with a spur A → D."""
    net = PipeNetwork()
    net.add_pipe("reservoir", "A")
    net.add_pipe("A", "B", demand_m3_s=0.6e-3)
    net.add_pipe("B", "C", demand_m3_s=0.8e-3)
    net.add_pipe("A", "D", demand_m3_s=0.4e-3)
    detector = LeakDetector()
    for up, down in net.pipes:
        detector.add_segment(NetworkSegmentMonitor(
            f"{up}->{down}", drift_mps=0.01, threshold_mps_s=1.5))
    return net, detector


def meter_noise(rng, sigma=0.004):
    return float(rng.normal(0.0, sigma))


def run_network(net, detector, snapshots, leak=None, leak_at=None, rng=None):
    """Feed solved+noisy meter pairs to the detector; returns events."""
    rng = rng or np.random.default_rng(0)
    events = []
    for t in range(snapshots):
        if leak is not None and t == leak_at:
            net.inject_leak(*leak)
        flows = net.solve()
        readings = {
            f"{up}->{down}": (
                flow.inlet_speed_mps + meter_noise(rng),
                flow.outlet_speed_mps + meter_noise(rng),
            )
            for (up, down), flow in flows.items()
        }
        events.extend(detector.update(readings, dt_s=1.0))
        if events:
            break
    return events, t


def test_healthy_network_never_alarms():
    net, detector = build_monitored_network()
    events, _ = run_network(net, detector, snapshots=3000)
    assert events == []


def test_leak_localised_to_the_right_segment():
    net, detector = build_monitored_network()
    events, t = run_network(
        net, detector, snapshots=500,
        leak=("B", "C", 0.15e-3), leak_at=50)
    assert events
    assert events[0].segment == "B->C"
    assert t - 50 < 120  # detected within two minutes of snapshots
    # Loss estimate in speed units over the DN50 pipe.
    area = np.pi * 0.025**2
    assert events[0].estimated_loss_mps == pytest.approx(
        0.15e-3 / area, rel=0.3)


def test_demand_change_is_not_a_leak():
    """A legitimate draw-off changes *metered* flows everywhere
    consistently — no segment imbalance, no alarm."""
    net, detector = build_monitored_network()
    rng = np.random.default_rng(1)
    events = []
    for t in range(1500):
        if t == 300:
            net.set_demand("C", 2.0e-3)  # big but metered consumer
        flows = net.solve()
        readings = {
            f"{up}->{down}": (flow.inlet_speed_mps + meter_noise(rng),
                              flow.outlet_speed_mps + meter_noise(rng))
            for (up, down), flow in flows.items()}
        events.extend(detector.update(readings, dt_s=1.0))
    assert events == []


def test_two_leaks_both_found():
    net, detector = build_monitored_network()
    net.inject_leak("A", "B", 0.12e-3)
    net.inject_leak("A", "D", 0.10e-3)
    rng = np.random.default_rng(2)
    found = set()
    for _ in range(600):
        flows = net.solve()
        readings = {
            f"{up}->{down}": (flow.inlet_speed_mps + meter_noise(rng),
                              flow.outlet_speed_mps + meter_noise(rng))
            for (up, down), flow in flows.items()}
        for event in detector.update(readings, dt_s=1.0):
            found.add(event.segment)
        if found == {"A->B", "A->D"}:
            break
    assert found == {"A->B", "A->D"}
