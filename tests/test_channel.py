"""Unit tests for the full ISIF input channel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.afe import AFEConfig
from repro.isif.channel import ChannelConfig, InputChannel


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ChannelConfig(sample_rate_hz=-1.0)
    with pytest.raises(ConfigurationError):
        ChannelConfig(digital_lpf_cutoff_hz=900.0)  # above Nyquist of 1 kHz


def test_acquire_is_input_referred():
    """Output must be in input units regardless of the PGA setting."""
    for gain_index in (0, 3, 5):
        ch = InputChannel(ChannelConfig(
            afe=AFEConfig(gain_index=gain_index, offset_v=0.0,
                          noise_density_v_per_rthz=0.0,
                          flicker_corner_hz=0.0)))
        out = 0.0
        for _ in range(300):
            out = ch.acquire(0.010)
        assert out == pytest.approx(0.010, rel=0.01)


def test_noise_floor_measurement():
    ch = InputChannel()
    noise = ch.input_referred_noise_vrms(samples=1500)
    assert 0.0 < noise < 50e-6  # sub-50 uV input-referred with gain 20
    with pytest.raises(ConfigurationError):
        ch.input_referred_noise_vrms(samples=5)


def test_higher_gain_lowers_input_referred_noise():
    """Classic chain property: PGA gain suppresses ADC quantisation."""
    lo = InputChannel(ChannelConfig(afe=AFEConfig(gain_index=0), seed=3))
    hi = InputChannel(ChannelConfig(afe=AFEConfig(gain_index=6), seed=3))
    assert hi.input_referred_noise_vrms() < lo.input_referred_noise_vrms()


def test_register_reconfiguration():
    ch = InputChannel()
    ch.registers.reg("CTRL").write_field("GAIN", 2)
    ch.registers.reg("LPF").write_field("CUTOFF_HZ", 20)
    ch.apply_registers()
    assert ch.config.afe.gain_index == 2
    assert ch.config.digital_lpf_cutoff_hz == 20.0


def test_register_bad_lpf_rejected():
    ch = InputChannel()
    ch.registers.reg("LPF").write_field("CUTOFF_HZ", 0)
    with pytest.raises(ConfigurationError):
        ch.apply_registers()


def test_register_offset_trim_applies():
    ch = InputChannel()
    ch.registers.reg("TRIM").write_field("OFFSET", 3072)  # +quarter range
    ch.apply_registers()
    assert ch.config.afe.offset_trim_v == pytest.approx(
        (3072 - 2048) / 2048.0 * ch.config.afe.rail_v / 2.0)


def test_bit_true_selection_via_register():
    ch = InputChannel()
    ch.registers.reg("CTRL").write_field("ADC_SEL", 1)
    ch.apply_registers()
    from repro.isif.sigma_delta import SigmaDeltaAdc
    assert isinstance(ch.adc, SigmaDeltaAdc)


def test_bit_true_channel_tracks_dc():
    ch = InputChannel(ChannelConfig(
        bit_true_adc=True, adc_osr=64,
        afe=AFEConfig(gain_index=2, offset_v=0.0,
                      noise_density_v_per_rthz=0.0, flicker_corner_hz=0.0)))
    out = 0.0
    for _ in range(200):
        out = ch.acquire(0.05)
    assert out == pytest.approx(0.05, rel=0.02)


def test_digital_lpf_smooths():
    cfg_wide = ChannelConfig(digital_lpf_cutoff_hz=400.0, seed=5)
    cfg_narrow = ChannelConfig(digital_lpf_cutoff_hz=2.0, seed=5)
    wide = InputChannel(cfg_wide)
    narrow = InputChannel(cfg_narrow)
    assert narrow.input_referred_noise_vrms() < wide.input_referred_noise_vrms()
