"""Unit tests for the PI controller IP."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat
from repro.isif.pi_controller import PIConfig, PIController

Q = QFormat(3, 20)


def make(kp=2.0, ki=100.0, dt=1e-3, qformat=None, out_max=5.0):
    return PIController(PIConfig(kp=kp, ki=ki, dt_s=dt, out_min=0.0,
                                 out_max=out_max, qformat=qformat))


def test_validation():
    with pytest.raises(ConfigurationError):
        PIConfig(kp=-1.0, ki=1.0, dt_s=1e-3)
    with pytest.raises(ConfigurationError):
        PIConfig(kp=0.0, ki=0.0, dt_s=1e-3)
    with pytest.raises(ConfigurationError):
        PIConfig(kp=1.0, ki=1.0, dt_s=1e-3, out_min=5.0, out_max=1.0)


def test_proportional_action():
    pi = make(kp=2.0, ki=0.0)
    pi.preset(1.0)
    assert pi.step(0.5) == pytest.approx(1.0 + 2.0 * 0.5)


def test_integral_accumulates():
    pi = make(kp=0.0, ki=100.0, dt=1e-3)
    out = 0.0
    for _ in range(100):
        out = pi.step(0.1)
    # 100 steps * ki*dt*e = 100 * 0.1 * 0.1 = 1.0
    assert out == pytest.approx(1.0, rel=1e-9)


def test_output_clamped():
    pi = make(kp=100.0, ki=0.0)
    assert pi.step(10.0) == 5.0
    assert pi.step(-10.0) == 0.0


def test_anti_windup_recovery_is_fast():
    """After deep saturation the integrator must not need to 'unwind'."""
    pi = make(kp=1.0, ki=1000.0, dt=1e-3)
    for _ in range(5000):
        pi.step(1.0)  # drive hard into the top rail
    # Error flips: output must leave the rail almost immediately.
    steps_at_rail = 0
    for _ in range(50):
        if pi.step(-0.5) >= 5.0:
            steps_at_rail += 1
    assert steps_at_rail < 5


def test_preset_bumpless():
    pi = make(kp=1.0, ki=100.0)
    pi.preset(2.5)
    assert pi.step(0.0) == pytest.approx(2.5)


def test_preset_clamps_to_range():
    pi = make()
    pi.preset(99.0)
    assert pi.step(0.0) <= 5.0


def test_reset():
    pi = make()
    pi.step(1.0)
    pi.reset()
    assert pi.integral == pytest.approx(0.0)


def test_fixed_point_path_matches_wrapper():
    pi_a = make(qformat=Q)
    pi_b = make(qformat=Q)
    rng = np.random.default_rng(0)
    for _ in range(300):
        e = float(rng.uniform(-0.1, 0.1))
        assert pi_a.step(e) == Q.to_float(pi_b.step_codes(Q.to_int(e)))


def test_fixed_point_twins_bit_exact():
    """Two instances = hardware IP and software peripheral: identical."""
    hw = make(qformat=Q)
    sw = make(qformat=Q)
    rng = np.random.default_rng(1)
    for _ in range(1000):
        code = Q.to_int(float(rng.uniform(-0.05, 0.05)))
        assert hw.step_codes(code) == sw.step_codes(code)


def test_fixed_point_tracks_float_closed_form():
    fx = make(kp=0.0, ki=100.0, qformat=Q)
    fl = make(kp=0.0, ki=100.0)
    out_fx = out_fl = 0.0
    for _ in range(500):
        out_fx = fx.step(0.07)
        out_fl = fl.step(0.07)
    assert out_fx == pytest.approx(out_fl, abs=0.005)


def test_step_codes_without_qformat_rejected():
    with pytest.raises(ConfigurationError):
        make().step_codes(1)


def test_closed_loop_first_order_plant_converges():
    """PI around y' = (u - y)/tau must regulate y to the setpoint."""
    pi = make(kp=0.5, ki=50.0, dt=1e-3)
    y = 0.0
    tau = 0.02
    setpoint = 2.0
    for _ in range(4000):
        u = pi.step(setpoint - y)
        y += 1e-3 / tau * (u - y)
    assert y == pytest.approx(setpoint, abs=1e-3)
