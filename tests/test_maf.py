"""Unit tests for the assembled MAF sensor model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SensorFault
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.membrane import WATER_BACKSIDE, Membrane

COND = FlowConditions(speed_mps=1.0)


def settle(sensor, supply, cond=COND, seconds=2.0, dt=1e-3):
    r = None
    for _ in range(int(seconds / dt)):
        r = sensor.step(dt, supply, supply, cond)
    return r


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MAFConfig(heater_nominal_ohm=-1.0)
    with pytest.raises(ConfigurationError):
        MAFConfig(wake_peak_coupling=1.5)


def test_paper_resistor_values():
    """Rh = 50.0 ± 0.5 Ω, Rt = 2000 ± 30 Ω (§2)."""
    s = MAFSensor()
    assert 49.5 <= s.heater_a.r0_ohm <= 50.5
    assert 49.5 <= s.heater_b.r0_ohm <= 50.5
    assert 1970.0 <= s.reference.r0_ohm <= 2030.0


def test_interdigitated_reference_shared():
    """Both half-bridges must see the *same* reference resistor."""
    s = MAFSensor()
    assert s.bridge_a.reference is s.bridge_b.reference


def test_unpowered_sensor_sits_at_fluid_temperature():
    s = MAFSensor()
    r = settle(s, 0.0, seconds=1.0)
    assert r.heater_a_temperature_k == pytest.approx(COND.temperature_k, abs=0.01)
    assert r.heater_a_power_w == 0.0


def test_heater_heats_with_supply():
    s = MAFSensor()
    r = settle(s, 2.5)
    assert r.heater_a_temperature_k > COND.temperature_k + 1.0
    assert r.heater_a_power_w > 1e-3


def test_faster_flow_cools_harder():
    """Same drive, more flow → lower equilibrium temperature."""
    slow = settle(MAFSensor(), 2.5, FlowConditions(speed_mps=0.2))
    fast = settle(MAFSensor(), 2.5, FlowConditions(speed_mps=2.0))
    assert fast.heater_a_temperature_k < slow.heater_a_temperature_k


def test_downstream_heater_runs_hotter():
    """The wake preheats the downstream element (direction mechanism)."""
    s = MAFSensor()
    r = settle(s, 2.5, FlowConditions(speed_mps=0.3))
    assert r.heater_b_temperature_k > r.heater_a_temperature_k
    # Reversed flow swaps the roles.
    s2 = MAFSensor()
    r2 = settle(s2, 2.5, FlowConditions(speed_mps=-0.3))
    assert r2.heater_a_temperature_k > r2.heater_b_temperature_k


def test_reference_tracks_fluid_temperature():
    s = MAFSensor()
    warm = FlowConditions(speed_mps=0.5, temperature_k=298.15)
    r = settle(s, 1.0, warm, seconds=3.0)
    t_ref = s.reference.temperature_from_resistance(r.reference_resistance_ohm)
    assert float(t_ref) == pytest.approx(298.15, abs=0.3)


def test_membrane_burst_on_overpressure():
    cfg = MAFConfig(membrane=Membrane(backside=WATER_BACKSIDE))
    s = MAFSensor(cfg)
    highp = FlowConditions(speed_mps=0.5, pressure_pa=7.0e5)
    with pytest.raises(SensorFault):
        s.step(1e-3, 1.0, 1.0, highp)
    assert s.failed is not None
    # Dead die stays dead.
    with pytest.raises(SensorFault):
        s.step(1e-3, 1.0, 1.0, COND)


def test_filled_membrane_survives_7bar():
    s = MAFSensor()
    peak = FlowConditions(speed_mps=0.5, pressure_pa=7.0e5)
    r = settle(s, 2.0, peak, seconds=0.5)
    assert s.failed is None
    assert r.heater_a_power_w > 0.0


def test_set_overtemperature_trims_both_bridges():
    s = MAFSensor()
    s.set_overtemperature(5.0, 288.15)
    rt = float(s.reference.resistance(288.15))
    bal_a = s.bridge_a.balance_resistance(rt)
    bal_b = s.bridge_b.balance_resistance(rt)
    t_bal_a = float(s.heater_a.temperature_from_resistance(bal_a))
    t_bal_b = float(s.heater_b.temperature_from_resistance(bal_b))
    assert t_bal_a == pytest.approx(288.15 + 5.0, abs=0.05)
    assert t_bal_b == pytest.approx(288.15 + 5.0, abs=0.05)


def test_step_rejects_bad_dt():
    with pytest.raises(ConfigurationError):
        MAFSensor().step(0.0, 1.0, 1.0, COND)


def test_determinism_per_seed():
    a = MAFSensor(MAFConfig(seed=5))
    b = MAFSensor(MAFConfig(seed=5))
    for _ in range(100):
        ra = a.step(1e-3, 2.0, 2.0, COND)
        rb = b.step(1e-3, 2.0, 2.0, COND)
    assert ra.differential_a_v == rb.differential_a_v
    assert ra.heater_a_temperature_k == rb.heater_a_temperature_k


def test_different_seeds_differ():
    a = MAFSensor(MAFConfig(seed=5))
    b = MAFSensor(MAFConfig(seed=6))
    assert a.heater_a.r0_ohm != b.heater_a.r0_ohm


def test_equilibrium_power_follows_kings_law_shape():
    """Power at fixed wall overtemperature must grow sub-linearly in v
    (concave King curve)."""
    powers = []
    for v in [0.25, 1.0, 2.25]:
        s = MAFSensor(MAFConfig(enable_bubbles=False, enable_fouling=False))
        # Drive to hold roughly constant dT by adjusting supply per v.
        r = settle(s, 2.5, FlowConditions(speed_mps=v))
        d_t = r.heater_a_temperature_k - COND.temperature_k
        powers.append(r.heater_a_power_w / d_t)  # = G(v)
    g1, g2, g3 = powers
    # sqrt-like growth: increments shrink.
    assert g2 - g1 > g3 - g2
    assert g3 > g2 > g1


def test_fouling_accumulates_via_step_fouling():
    s = MAFSensor()
    settle(s, 2.5, seconds=0.5)
    chem_cond = FlowConditions(speed_mps=0.3)
    s.step_fouling(30 * 86400.0, chem_cond, duty_cycle=1.0)
    assert s.fouling_a.thickness_m > 0.0
    with pytest.raises(ConfigurationError):
        s.step_fouling(1.0, chem_cond, duty_cycle=2.0)


def test_pulsed_duty_slows_fouling():
    cont = MAFSensor(MAFConfig(seed=1))
    puls = MAFSensor(MAFConfig(seed=1))
    for s in (cont, puls):
        settle(s, 2.5, seconds=0.5)
    cond = FlowConditions(speed_mps=0.3)
    cont.step_fouling(60 * 86400.0, cond, duty_cycle=1.0)
    puls.step_fouling(60 * 86400.0, cond, duty_cycle=0.3)
    assert puls.fouling_a.thickness_m < cont.fouling_a.thickness_m
