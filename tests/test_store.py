"""ArtifactStore unit tests: atomic publication, headers, layering.

The store's contract is small but load-bearing: a ``get`` sees either
nothing or a complete versioned artifact (never a torn file), ``put``
publishes atomically, keys are canonical hashes so independent
processes converge with no coordination, and the whole thing layers
*under* the in-process calibration LRU so a cold process skips the §4
calibration campaign with bit-identical outputs.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.station.profiles import hold
from repro.station.scenarios import (build_calibrated_monitor,
                                     clear_calibration_cache)
from repro.store import (STORE_FORMAT_VERSION, ArtifactStore, canonical_key,
                         get_default_store, set_default_store)

pytestmark = pytest.mark.durability


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def test_put_get_round_trip_identity(store):
    artifact = {"coeffs": np.linspace(0.0, 1.0, 7),
                "label": "calibration", "n": 3}
    key = canonical_key({"seed": 1, "fast": True})
    path = store.put("calibration", key, artifact)
    assert path.exists()
    loaded = store.get("calibration", key)
    assert loaded["label"] == "calibration" and loaded["n"] == 3
    assert np.array_equal(loaded["coeffs"], artifact["coeffs"])
    assert loaded["coeffs"].tobytes() == artifact["coeffs"].tobytes()


def test_miss_returns_none_and_counts(store):
    assert store.get("calibration", "deadbeef00000000") is None
    stats = store.stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    assert stats["hit_rate"] == 0.0


def test_contains_keys_kinds_inspect(store):
    assert not store.contains("calibration", "aa")
    store.put("calibration", "aa", 1)
    store.put("calibration", "bb", 2)
    store.put("checkpoint", "cc", 3)
    assert store.contains("calibration", "aa")
    assert store.keys("calibration") == ["aa", "bb"]
    assert store.keys("nope") == []
    assert store.kinds() == ["calibration", "checkpoint"]
    entries = store.inspect()
    assert [(e["kind"], e["key"]) for e in entries] == [
        ("calibration", "aa"), ("calibration", "bb"), ("checkpoint", "cc")]
    assert all(e["bytes"] > 0 for e in entries)


def test_evict_scopes(store):
    store.put("calibration", "aa", 1)
    store.put("calibration", "bb", 2)
    store.put("checkpoint", "cc", 3)
    assert store.evict(kind="calibration", key="aa") == 1
    assert store.keys("calibration") == ["bb"]
    assert store.evict(kind="checkpoint") == 1
    assert store.evict() == 1  # the remaining calibration/bb
    assert store.inspect() == []
    assert store.evict() == 0


def test_evict_key_without_kind_raises(store):
    with pytest.raises(CheckpointError):
        store.evict(key="aa")


def test_corrupt_artifact_raises(store):
    store.put("calibration", "aa", 1)
    store._path("calibration", "aa").write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError) as exc:
        store.get("calibration", "aa")
    assert exc.value.reason == "corrupt"


def test_foreign_pickle_raises(store):
    path = store._path("calibration", "aa")
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"magic": "something-else"}))
    with pytest.raises(CheckpointError) as exc:
        store.get("calibration", "aa")
    assert exc.value.reason == "corrupt"


def test_version_mismatch_raises(store):
    store.put("calibration", "aa", 1)
    path = store._path("calibration", "aa")
    record = pickle.loads(path.read_bytes())
    record["version"] = STORE_FORMAT_VERSION + 1
    path.write_bytes(pickle.dumps(record))
    with pytest.raises(CheckpointError) as exc:
        store.get("calibration", "aa")
    assert exc.value.reason == "version"


def test_relocated_artifact_raises(store):
    """A file copied under the wrong (kind, key) is rejected, not served."""
    store.put("calibration", "aa", 1)
    wrong = store._path("calibration", "bb")
    wrong.write_bytes(store._path("calibration", "aa").read_bytes())
    with pytest.raises(CheckpointError) as exc:
        store.get("calibration", "bb")
    assert exc.value.reason == "corrupt"


def test_no_temp_files_left_behind(store):
    for i in range(5):
        store.put("calibration", f"k{i}", list(range(i)))
    leftovers = [p for p in store.root.rglob(".tmp-*")]
    assert leftovers == []


def test_stats_hit_rate(store):
    store.put("calibration", "aa", 1)
    store.get("calibration", "aa")
    store.get("calibration", "aa")
    store.get("calibration", "zz")
    stats = store.stats()
    assert stats["hits"] == 2 and stats["misses"] == 1
    assert stats["writes"] == 1
    assert stats["hit_rate"] == pytest.approx(2.0 / 3.0)


def test_canonical_key_is_order_invariant():
    a = canonical_key({"x": 1, "y": [1, 2], "z": {"a": 0.5, "b": "s"}})
    b = canonical_key({"z": {"b": "s", "a": 0.5}, "y": [1, 2], "x": 1})
    assert a == b
    assert len(a) == 16 and int(a, 16) >= 0
    assert canonical_key({"x": 1}) != canonical_key({"x": 2})


def test_default_store_explicit_and_env(tmp_path, monkeypatch):
    import repro.store as store_module
    # Explicit install (accepts a bare path) wins and survives env.
    installed = set_default_store(tmp_path / "explicit")
    try:
        assert isinstance(installed, ArtifactStore)
        assert get_default_store() is installed
        # Clearing re-arms nothing: the explicit call overrode the env.
        set_default_store(None)
        assert get_default_store() is None
        # Reset the lazy latch and point the env at a directory.
        monkeypatch.setattr(store_module, "_ENV_CHECKED", False)
        monkeypatch.setenv(store_module.STORE_ENV, str(tmp_path / "env"))
        picked = get_default_store()
        assert isinstance(picked, ArtifactStore)
        assert picked.root == tmp_path / "env"
    finally:
        set_default_store(None)


def test_calibration_layering_cold_process_hit(tmp_path):
    """A cold-LRU build served from disk is bit-identical to a fresh one.

    Clearing the in-process LRU between builds simulates a fresh
    process; the second build must hit the store, skip the calibration
    campaign, and still drive a bit-identical run.
    """
    store = ArtifactStore(tmp_path / "store")
    profile = hold(speed_cmps=90.0, duration_s=0.3)

    clear_calibration_cache()
    first = build_calibrated_monitor(seed=90125, fast=True, store=store)
    assert store.stats()["writes"] == 1
    assert store.stats()["misses"] == 1
    run_a = first.rig.run(profile, record_every_n=10)

    clear_calibration_cache()
    second = build_calibrated_monitor(seed=90125, fast=True, store=store)
    assert store.stats()["hits"] == 1
    assert store.stats()["writes"] == 1  # no recalibration, no rewrite
    assert second.calibration.to_dict() == first.calibration.to_dict()
    run_b = second.rig.run(profile, record_every_n=10)
    for name in run_a.FIELDS:
        a, b = np.asarray(getattr(run_a, name)), np.asarray(
            getattr(run_b, name))
        assert np.array_equal(a, b), name
    clear_calibration_cache()


def test_calibration_layering_key_discriminates(tmp_path):
    """Different build knobs land on different store keys."""
    store = ArtifactStore(tmp_path / "store")
    clear_calibration_cache()
    build_calibrated_monitor(seed=90125, fast=True, store=store)
    build_calibrated_monitor(seed=90126, fast=True, store=store)
    assert len(store.keys("calibration")) == 2
    clear_calibration_cache()
