"""API quality gates: docstrings and export hygiene.

Deliverable-level checks enforced as tests: every public module, class,
function and method in the library carries a docstring, and every name
listed in a package's ``__all__`` actually resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.physics",
    "repro.sensor",
    "repro.isif",
    "repro.conditioning",
    "repro.baselines",
    "repro.station",
    "repro.analysis",
    "repro.runtime",
    "repro.observability",
    "repro.service",
]


def iter_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name == "__main__":
                    continue  # importing it would execute the CLI
                seen.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return seen


@pytest.mark.parametrize("module", iter_modules(),
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", iter_modules(),
                         ids=lambda m: m.__name__)
def test_public_api_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked at their home module
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for m_name, member in vars(obj).items():
                    if m_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not inspect.getdoc(member):
                        undocumented.append(f"{name}.{m_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_exports_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    exported = getattr(pkg, "__all__", [])
    missing = [name for name in exported if not hasattr(pkg, name)]
    assert not missing, f"{pkg_name}.__all__ lists unknown names {missing}"


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_error_hierarchy_single_source():
    """``repro.errors.__all__`` is the one list of library exceptions.

    Every ``ReproError`` subclass defined anywhere in the package must
    live in :mod:`repro.errors` and be listed in its ``__all__`` — no
    module may grow a private exception class on the side.
    """
    from repro.errors import ReproError

    errors = importlib.import_module("repro.errors")
    listed = set(errors.__all__)
    for module in iter_modules():
        for name, obj in vars(module).items():
            if inspect.isclass(obj) and issubclass(obj, ReproError):
                assert obj.__module__ == "repro.errors", (
                    f"{module.__name__}.{name} defines an exception "
                    f"outside repro.errors")
                assert obj.__name__ in listed, (
                    f"{obj.__name__} missing from repro.errors.__all__")


def test_facade_single_source():
    """``repro.run`` / ``repro.connect`` are THE client entry points.

    Both live in :mod:`repro.service.facade` and are re-exported by
    identity from ``repro`` and ``repro.service`` — no module may grow
    a competing top-level run/connect spelling on the side.
    """
    facade = importlib.import_module("repro.service.facade")
    service_pkg = importlib.import_module("repro.service")
    for name in ("run", "connect"):
        obj = getattr(facade, name)
        assert obj.__module__ == "repro.service.facade"
        assert getattr(repro, name) is obj, f"repro.{name} is not the facade"
        assert getattr(service_pkg, name) is obj
        assert name in repro.__all__
    # the streamed handle types come from one home module too
    for name in ("FleetService", "ClientSession"):
        assert getattr(repro, name) is getattr(
            importlib.import_module("repro.service.service"), name)
    assert repro.Snapshot is importlib.import_module(
        "repro.service.streams").Snapshot


def test_concat_single_source():
    """``RunResult.concat`` is THE merge: one axis-aware classmethod.

    ``concat_time`` survives only as a declared thin alias (the
    ``_alias_of`` marker) so no second merge implementation can creep
    back in behind it.
    """
    from repro.runtime import RunResult
    assert getattr(RunResult.concat_time.__func__, "_alias_of", None) == \
        "concat", "concat_time must stay a thin alias of concat"


def test_errors_reexported_from_top_level():
    """The full exception hierarchy is importable from ``repro`` itself,
    by identity, and listed in ``repro.__all__``."""
    errors = importlib.import_module("repro.errors")
    for name in errors.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"
        assert getattr(repro, name) is getattr(errors, name), (
            f"repro.{name} is not the repro.errors class")
        assert name in repro.__all__, f"{name} not in repro.__all__"
    assert len(repro.__all__) == len(set(repro.__all__)), (
        "repro.__all__ contains duplicates")
