"""Failure-injection integration tests.

A deployed metering point must fail loudly, never silently: these tests
inject the faults the models support and assert the system surfaces
them the right way.
"""

import numpy as np
import pytest

from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.drive import PulsedDrive
from repro.errors import CalibrationError, SaturationError, SensorFault
from repro.isif.afe import AFEConfig
from repro.isif.eeprom import Eeprom
from repro.isif.platform import ISIFPlatform
from repro.isif.scheduler import IPTask
from repro.isif.timers import Watchdog, WatchdogReset
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.membrane import WATER_BACKSIDE, Membrane
from repro.sensor.packaging import HousingQuality, SensorHousing

COND = FlowConditions(speed_mps=1.0)


def test_membrane_burst_propagates_to_the_loop():
    """A pressure transient beyond the rating kills the die; the loop
    surfaces SensorFault instead of reporting stale flow."""
    sensor = MAFSensor(MAFConfig(seed=1, membrane=Membrane(backside=WATER_BACKSIDE)))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=1))
    controller.settle(FlowConditions(speed_mps=1.0, pressure_pa=0.2e5), 0.1)
    surge = FlowConditions(speed_mps=1.0, pressure_pa=6.0e5)
    with pytest.raises(SensorFault):
        for _ in range(100):
            controller.step(surge)
    # Every subsequent access keeps failing — no zombie readings.
    with pytest.raises(SensorFault):
        controller.step(COND)


def test_bare_housing_leakage_biases_the_reading():
    """Moisture ingress in a bad assembly shifts the bridge balance —
    the §4 'leakage current' problem."""
    def settled_supply(housing):
        sensor = MAFSensor(MAFConfig(seed=2), housing=housing)
        controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=2))
        return controller.settle(COND, 0.8).supply_a_v

    good = settled_supply(SensorHousing())
    bad_housing = SensorHousing(quality=HousingQuality.BARE)
    bad_housing.immerse(1500.0)  # soaked but not yet corroded open
    bad = settled_supply(bad_housing)
    assert abs(bad - good) > 0.01  # visible measurement bias


def test_bare_housing_eventually_corrodes_open():
    housing = SensorHousing(quality=HousingQuality.BARE)
    with pytest.raises(SensorFault):
        for _month in range(12):
            housing.immerse(30 * 24.0)


def test_afe_strict_mode_flags_overdrive():
    """A gain too high for the operating point clips; strict mode makes
    the event impossible to miss during bring-up."""
    sensor = MAFSensor(MAFConfig(seed=3))
    platform = ISIFPlatform.for_anemometer(gain_index=7, seed=3)
    from dataclasses import replace
    ch = platform.channels[0]
    ch.config = replace(ch.config, afe=replace(ch.config.afe, strict=True))
    ch._rebuild()
    controller = CTAController(sensor, platform,
                               CTAConfig(startup_supply_v=4.0))
    with pytest.raises(SaturationError):
        for _ in range(500):
            controller.step(COND)


def test_watchdog_catches_hung_measurement_loop():
    """The firmware pattern: kick per completed loop iteration; a stuck
    ADC wait means no kicks and a forced reset."""
    sensor = MAFSensor(MAFConfig(seed=4))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=4))
    wd = Watchdog(timeout_s=0.05)
    dt = controller.platform.dt_s
    # Healthy phase: loop runs and services the dog.
    for _ in range(200):
        controller.step(COND)
        wd.kick()
        wd.advance(dt)
    assert wd.reset_count == 0
    # Hang: the loop stops executing; only time advances.
    with pytest.raises(WatchdogReset):
        for _ in range(200):
            wd.advance(dt)


def test_corrupt_eeprom_blocks_boot():
    """A monitor must refuse to measure with a damaged calibration."""
    from repro.conditioning.eeprom_image import load_calibration, store_calibration
    from repro.physics.kings_law import KingsLaw
    from repro.conditioning.calibration import FlowCalibration

    eeprom = Eeprom(seed=5)
    store_calibration(eeprom, FlowCalibration(
        law=KingsLaw(1e-3, 4e-3, 0.5), overtemperature_k=5.0))
    raw = bytearray(eeprom.read(0, 16))
    raw[10] ^= 0x40
    eeprom.write(0, bytes(raw))
    with pytest.raises(CalibrationError):
        load_calibration(eeprom)


def test_scheduler_flags_infeasible_partition():
    """Loading the LEON past its budget is a *reported* condition the
    DSE bench uses to reject partitions, not a crash."""
    sensor = MAFSensor(MAFConfig(seed=6))
    platform = ISIFPlatform.for_anemometer(seed=6)
    platform.scheduler.register(IPTask("software_fft", lambda: None,
                                       cycles=200_000))
    controller = CTAController(sensor, platform)
    controller.settle(COND, 0.05)
    assert platform.scheduler.overrun
    assert platform.scheduler.worst_case_utilization() > 1.0


def test_pulsed_drive_survives_mid_cycle_flow_reversal():
    """Direction flip during an off-phase must not destabilise the loop."""
    sensor = MAFSensor(MAFConfig(seed=7))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=7),
                               drive=PulsedDrive(period_s=0.2, duty=0.5))
    controller.settle(FlowConditions(speed_mps=1.0), 1.0)
    tel = controller.settle(FlowConditions(speed_mps=-1.0), 1.0)
    d_t = tel.readout.heater_a_temperature_k - 288.15
    assert 0.0 <= tel.supply_a_v <= 5.0
    if tel.energised:
        assert d_t == pytest.approx(5.0, abs=1.0)
