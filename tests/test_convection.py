"""Unit tests for the convection model and King's-law derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.physics.convection import (
    NATURAL_CONVECTION_FLOOR,
    WireGeometry,
    derive_kings_coefficients,
    film_conductance,
    nusselt_kramers,
    reynolds_number,
)


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        WireGeometry(length_m=-1.0)
    with pytest.raises(ConfigurationError):
        WireGeometry(length_m=1e-6, diameter_m=1e-3)  # d > L


def test_surface_area():
    g = WireGeometry(length_m=1e-3, diameter_m=6e-6)
    assert g.surface_area_m2 == pytest.approx(np.pi * 6e-6 * 1e-3)


def test_reynolds_scales_linearly_with_speed():
    g = WireGeometry()
    re1 = reynolds_number(0.5, g, 293.15)
    re2 = reynolds_number(1.0, g, 293.15)
    assert re2 == pytest.approx(2.0 * re1)


def test_reynolds_uses_speed_magnitude():
    g = WireGeometry()
    assert reynolds_number(-1.0, g, 293.15) == pytest.approx(
        reynolds_number(1.0, g, 293.15))


def test_nusselt_grows_with_sqrt_re():
    n1 = nusselt_kramers(1.0, 7.0)
    n4 = nusselt_kramers(4.0, 7.0)
    # Forced part doubles when Re quadruples.
    forced1 = n1 - 0.42 * 7.0**0.2
    forced4 = n4 - 0.42 * 7.0**0.2
    assert forced4 == pytest.approx(2.0 * forced1)


def test_nusselt_rejects_negative_re():
    with pytest.raises(ConfigurationError):
        nusselt_kramers(-1.0, 7.0)


def test_film_conductance_monotone_in_speed():
    g = WireGeometry()
    speeds = [0.0, 0.1, 0.5, 1.0, 2.0, 2.5]
    values = [float(film_conductance(v, g, 298.15, 288.15)) for v in speeds]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_film_conductance_even_in_speed():
    g = WireGeometry()
    forward = float(film_conductance(1.2, g, 298.15, 288.15))
    reverse = float(film_conductance(-1.2, g, 298.15, 288.15))
    assert forward == pytest.approx(reverse)


def test_film_conductance_floor_at_rest():
    g = WireGeometry()
    at_rest = float(film_conductance(0.0, g, 298.15, 288.15))
    at_floor = float(film_conductance(NATURAL_CONVECTION_FLOOR, g, 298.15, 288.15))
    assert at_rest == pytest.approx(at_floor)
    assert at_rest > 0.0


def test_scalar_fast_path_matches_array_path():
    g = WireGeometry()
    for v in [0.0, 0.03, 0.7, 2.5]:
        scalar = film_conductance(v, g, 299.0, 289.0)
        vector = film_conductance(np.array([v]), g, np.array([299.0]), np.array([289.0]))
        assert float(scalar) == pytest.approx(float(vector[0]), rel=1e-12)


def test_derived_kings_coefficients_reproduce_conductance():
    g = WireGeometry()
    film_t = 293.15
    a, b, n = derive_kings_coefficients(g, film_t)
    assert n == 0.5
    for v in [0.05, 0.5, 2.0]:
        expected = a + b * v**0.5
        # Evaluate the full model at matched film temperature.
        actual = float(film_conductance(v, g, film_t, film_t))
        assert actual == pytest.approx(expected, rel=1e-9)


def test_conductance_magnitude_physical():
    # A micro hot film in water: a few mW/K, not W/K, not uW/K.
    g = WireGeometry()
    value = float(film_conductance(1.0, g, 298.15, 288.15))
    assert 1e-3 < value < 50e-3


@given(st.floats(min_value=0.0, max_value=3.0),
       st.floats(min_value=276.0, max_value=320.0))
def test_conductance_positive_and_finite(speed, bulk_t):
    g = WireGeometry()
    value = float(film_conductance(speed, g, bulk_t + 8.0, bulk_t))
    assert np.isfinite(value)
    assert value > 0.0
