"""Tests for the canned scenario builders."""

import pytest

from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.sensor.maf import MAFConfig
from repro.sensor.packaging import HousingQuality, SensorHousing
from repro.station.scenarios import (
    DEFAULT_CALIBRATION_SPEEDS_CMPS,
    build_calibrated_monitor,
    vinci_station,
)


def test_vinci_station_parameters():
    line = vinci_station()
    assert line.config.pipe_diameter_m == pytest.approx(0.05)
    # Hard Tuscan water chemistry attached.
    assert line.config.chemistry.calcium_mg_per_l > 150.0


def test_default_campaign_covers_the_paper_range():
    speeds = DEFAULT_CALIBRATION_SPEEDS_CMPS
    assert speeds[0] == 0.0          # zero point for A and direction offset
    assert max(speeds) == 250.0      # the paper's full scale
    assert len(speeds) >= 6


def test_build_with_pulsed_drive_default():
    setup = build_calibrated_monitor(seed=70, fast=True)
    drive = setup.monitor.controller.drive
    assert isinstance(drive, PulsedDrive)


def test_build_with_continuous_drive():
    setup = build_calibrated_monitor(seed=70, fast=True,
                                     use_pulsed_drive=False)
    assert isinstance(setup.monitor.controller.drive, ContinuousDrive)


def test_build_with_custom_housing_scales_turbulence():
    rough = SensorHousing(profile_smoothing=0.1)
    setup = build_calibrated_monitor(seed=71, fast=True, housing=rough,
                                     use_pulsed_drive=False)
    assert setup.monitor.sensor.housing is rough
    # The rig's line inherited the rougher insert's turbulence.
    smooth_setup = build_calibrated_monitor(seed=71, fast=True,
                                            use_pulsed_drive=False)
    rough_noise = setup.rig.line._noise.config.intensity
    smooth_noise = smooth_setup.rig.line._noise.config.intensity
    assert rough_noise > smooth_noise


def test_build_with_custom_sensor_config():
    cfg = MAFConfig(seed=72, wake_peak_coupling=0.10)
    setup = build_calibrated_monitor(seed=72, fast=True, sensor_config=cfg,
                                     use_pulsed_drive=False)
    assert setup.monitor.sensor.config.wake_peak_coupling == 0.10


def test_custom_calibration_speeds():
    setup = build_calibrated_monitor(
        seed=73, fast=True, use_pulsed_drive=False,
        calibration_speeds_cmps=[0.0, 60.0, 150.0, 250.0])
    assert setup.calibration.law.coeff_b > 0.0


def test_monitor_and_calibration_share_the_sensor_instance():
    setup = build_calibrated_monitor(seed=74, fast=True,
                                     use_pulsed_drive=False)
    # The monitor operates the very die that was calibrated.
    assert setup.monitor.sensor is setup.monitor.controller.sensor
