"""Property-based invariants for the zero-copy merge path.

``RunResult.from_shared`` is pointer assembly over a flat buffer laid
out by ``RunResult.shared_layout``; these properties are what make it
safe to hand those views to callers:

- the layout tiles the buffer exactly (disjoint fields, no gaps);
- a merged result's rows never alias — not across rigs, not across
  fields — so no rig's trace can be read or clobbered through another;
- every view is read-only after merge;
- bytes written by one shard land in exactly that shard's rows, and
  corrupting one rig's region perturbs no other rig.

Hypothesis is an optional dev dependency: the module skips when it is
absent, so the tier-1 suite never depends on it.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.runtime import RunResult, partition_monitors  # noqa: E402
from repro.runtime.shm import write_block_rows  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)

_FIELDS = ("time_s",) + RunResult.STACKED_FIELDS


def _value(row, field_index, tick):
    """A sentinel unique to (rig row, field, tick)."""
    return 100000.0 * (row + 1) + 100.0 * (field_index + 1) + tick


def _shard_block(rows, ticks, time_s):
    """A synthetic shard result whose cells encode their coordinates."""
    data = {}
    for j, name in enumerate(RunResult.STACKED_FIELDS):
        arr = np.array([[_value(row, j, t) for t in range(ticks)]
                        for row in rows], dtype=np.float64)
        data[name] = arr.astype(np.int64) if name == "direction" else arr
    return RunResult(time_s=np.asarray(time_s, dtype=np.float64), **data)


def _merged(n, k, ticks):
    """Write k shards of an (n, ticks) fleet into a flat buffer; merge."""
    _, total = RunResult.shared_layout(n, ticks)
    buf = bytearray(total)
    time_s = np.arange(ticks, dtype=np.float64) * 0.05
    for i, (start, stop) in enumerate(partition_monitors(n, k)):
        block = _shard_block(range(start, stop), ticks, time_s)
        write_block_rows(buf, block, n, ticks, start, write_time=i == 0)
    return buf, time_s, RunResult.from_shared(buf, n, ticks)


@st.composite
def _merge_case(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=n))
    ticks = draw(st.integers(min_value=1, max_value=8))
    return n, k, ticks


@SETTINGS
@given(_merge_case())
def test_layout_tiles_the_buffer_exactly(case):
    n, _, ticks = case
    offsets, total = RunResult.shared_layout(n, ticks)
    sizes = {name: (ticks if name == "time_s" else n * ticks) * 8
             for name in _FIELDS}
    spans = sorted((offsets[name], offsets[name] + sizes[name])
                   for name in _FIELDS)
    assert spans[0][0] == 0 and spans[-1][1] == total
    for (_, stop), (start, _) in zip(spans, spans[1:]):
        assert start == stop  # contiguous, disjoint, gap-free


@SETTINGS
@given(_merge_case())
def test_merged_views_are_read_only_and_never_alias(case):
    n, k, ticks = case
    _, _, merged = _merged(n, k, ticks)
    views = {name: np.asarray(getattr(merged, name)) for name in _FIELDS}
    for name, view in views.items():
        assert not view.flags.writeable, name
        with pytest.raises(ValueError):
            view[...] = 0.0
    # no cross-field overlap (time included), no cross-rig overlap
    names = list(views)
    for a in range(len(names)):
        for b in range(a + 1, len(names)):
            assert not np.shares_memory(views[names[a]], views[names[b]])
    for name in RunResult.STACKED_FIELDS:
        for row in range(n):
            for other in range(row + 1, n):
                assert not np.shares_memory(views[name][row],
                                            views[name][other])


@SETTINGS
@given(_merge_case())
def test_every_cell_lands_in_its_own_rigs_row(case):
    n, k, ticks = case
    _, time_s, merged = _merged(n, k, ticks)
    assert np.array_equal(np.asarray(merged.time_s), time_s)
    for j, name in enumerate(RunResult.STACKED_FIELDS):
        view = np.asarray(getattr(merged, name))
        assert view.shape == (n, ticks)
        expected = np.array([[_value(row, j, t) for t in range(ticks)]
                             for row in range(n)])
        assert np.array_equal(view, expected), name


@SETTINGS
@given(_merge_case())
def test_corrupting_one_rig_never_touches_another(case):
    n, k, ticks = case
    offsets, _ = RunResult.shared_layout(n, ticks)
    buf, _, merged = _merged(n, k, ticks)
    victim = n - 1
    before = {name: np.array(getattr(merged, name))
              for name in RunResult.STACKED_FIELDS}
    for name in RunResult.STACKED_FIELDS:
        start = offsets[name] + victim * ticks * 8
        buf[start:start + ticks * 8] = b"\xff" * (ticks * 8)
    for name in RunResult.STACKED_FIELDS:
        view = np.asarray(getattr(merged, name))
        assert not np.array_equal(view[victim], before[name][victim])
        for row in range(n):
            if row != victim:
                assert np.array_equal(view[row], before[name][row]), name


def test_from_shared_refuses_short_buffer():
    _, total = RunResult.shared_layout(2, 5)
    with pytest.raises(ConfigurationError):
        RunResult.from_shared(bytearray(total - 1), 2, 5)


def test_write_block_rows_refuses_tick_mismatch():
    from repro.runtime.shm import PoolWorkerError

    _, total = RunResult.shared_layout(2, 5)
    block = _shard_block(range(2), 4, np.arange(4, dtype=np.float64))
    with pytest.raises(PoolWorkerError):
        write_block_rows(bytearray(total), block, 2, 5, 0, write_time=True)
