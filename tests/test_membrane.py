"""Unit tests for the membrane thermal/mechanical model."""

import pytest

from repro.errors import ConfigurationError
from repro.sensor.materials import SI_NITRIDE_LPCVD, MembraneLayer
from repro.sensor.membrane import (
    ORGANIC_FILL,
    WATER_BACKSIDE,
    BacksideFill,
    Membrane,
    default_stack,
)


def test_default_stack_is_2um_total():
    """§4: '2 µm thickness including the passivation layer'."""
    m = Membrane()
    assert m.thickness_m == pytest.approx(2.0e-6, rel=1e-6)


def test_layer_validation():
    with pytest.raises(ConfigurationError):
        MembraneLayer("bad", -1e-6, 1.0, 1.0, 1.0, 1.0)


def test_fill_validation():
    with pytest.raises(ConfigurationError):
        BacksideFill("bad", thermal_conductivity=0.0)
    with pytest.raises(ConfigurationError):
        BacksideFill("bad", thermal_conductivity=0.1, stiffening_factor=0.5)


def test_membrane_validation():
    with pytest.raises(ConfigurationError):
        Membrane(stack=())
    with pytest.raises(ConfigurationError):
        Membrane(heater_fraction=1.5)
    with pytest.raises(ConfigurationError):
        Membrane(side_m=-1.0)


def test_thermal_isolation_property():
    """Membrane lateral conductance must be far below the water film
    conductance (a few mW/K) — that is the whole point of the membrane."""
    m = Membrane()
    assert m.lateral_conductance_w_per_k < 1e-4


def test_organic_fill_reduces_backside_loss():
    filled = Membrane(backside=ORGANIC_FILL)
    flooded = Membrane(backside=WATER_BACKSIDE)
    assert filled.backside_conductance_w_per_k < flooded.backside_conductance_w_per_k


def test_organic_fill_survives_7bar_peaks():
    """§5: pressure up to 3 bar with 7 bar peaks — the filled membrane
    must be rated above that, the unfilled one must not be."""
    filled = Membrane(backside=ORGANIC_FILL)
    flooded = Membrane(backside=WATER_BACKSIDE)
    assert filled.burst_pressure_pa > 7.0e5
    assert flooded.burst_pressure_pa < 7.0e5


def test_heat_capacities_partition():
    m = Membrane()
    total = m.heater_region_capacity_j_per_k + m.rim_region_capacity_j_per_k
    areal = sum(layer.areal_heat_capacity for layer in m.stack)
    assert total == pytest.approx(areal * m.area_m2)


def test_heater_time_constant_is_sub_ms():
    """'the response times are reasonably short, even in water' — the
    heater patch over a typical water film conductance settles in well
    under a millisecond."""
    m = Membrane()
    c = m.heater_region_capacity_j_per_k / 2.0  # one heater
    g_film = 5e-3  # typical mW/K in water
    tau = c / g_film
    assert tau < 1e-3


def test_deflection_linear_in_pressure():
    m = Membrane()
    w1 = m.deflection_m(1e5)
    w2 = m.deflection_m(2e5)
    assert w2 == pytest.approx(2.0 * w1)
    with pytest.raises(ConfigurationError):
        m.deflection_m(-1.0)


def test_thicker_stack_is_stronger():
    thick_nitride = MembraneLayer(
        name="Si3N4 thick", thickness_m=1.2e-6,
        thermal_conductivity=3.2, density=3100.0, specific_heat=700.0,
        tensile_strength_pa=6.0e9)
    thick = Membrane(stack=(thick_nitride,) * 3)
    thin = Membrane()
    assert thick.burst_pressure_pa > thin.burst_pressure_pa
