"""MixedEngine: group-by-config sub-batching over heterogeneous fleets.

The acceptance bar is bit-exactness: every rig of a mixed fleet must
come back byte-identical to running its config group alone on a plain
:class:`BatchEngine` — serial and sharded, one-shot and windowed, and
across ``drop()``.  All assertions here compare ``tobytes()``.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import (BatchEngine, MixedEngine, RunResult,
                           config_group_key, fleet_groups)
from repro.station.profiles import hold, staircase
from repro.station.scenarios import build_calibrated_monitor


def _rig(seed, **kwargs):
    return build_calibrated_monitor(seed=seed, fast=True, **kwargs).rig


def _mixed_fleet():
    """Four rigs, two config groups, interleaved in caller order."""
    return [
        _rig(11),
        _rig(12, overtemperature_k=7.0),
        _rig(13),
        _rig(14, overtemperature_k=7.0),
    ]


def _assert_rows_equal(result, row, reference, ref_row):
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        a = np.asarray(getattr(result, name))
        b = np.asarray(getattr(reference, name))
        if name != "time_s":
            a, b = a[row], b[ref_row]
        assert a.tobytes() == b.tobytes(), name


def test_config_group_key_splits_on_build_config():
    rigs = _mixed_fleet()
    keys = [config_group_key(r) for r in rigs]
    assert keys[0] == keys[2]
    assert keys[1] == keys[3]
    assert keys[0] != keys[1]
    groups = fleet_groups(rigs)
    assert list(groups.values()) == [[0, 2], [1, 3]]


def test_config_group_key_ignores_per_rig_seed():
    assert config_group_key(_rig(21)) == config_group_key(_rig(22))


def test_fleet_groups_refuses_empty():
    with pytest.raises(ConfigurationError):
        fleet_groups([])


def test_batch_engine_names_offending_groups():
    rigs = _mixed_fleet()
    with pytest.raises(ConfigurationError) as err:
        BatchEngine(rigs)
    assert err.value.reason == "heterogeneous"
    for key in fleet_groups(rigs):
        assert key in str(err.value)


def test_mixed_run_matches_per_group_batch():
    profile = staircase([0.0, 60.0], dwell_s=1.0)
    mixed = MixedEngine(_mixed_fleet()).run(profile)
    fresh = _mixed_fleet()
    for positions in fleet_groups(fresh).values():
        alone = BatchEngine([fresh[i] for i in positions]).run(profile)
        for rank, pos in enumerate(positions):
            _assert_rows_equal(mixed, pos, alone, rank)
    # Caller-order provenance: (group key, row within the group).
    assert [p[1] for p in mixed.provenance()] == [0, 0, 1, 1]


def test_mixed_run_sharded_matches_serial():
    profile = hold(80.0, 1.5)
    serial = MixedEngine(_mixed_fleet()).run(profile)
    sharded = MixedEngine(_mixed_fleet()).run(profile, workers=2)
    for pos in range(4):
        _assert_rows_equal(sharded, pos, serial, pos)


def test_mixed_single_group_is_plain_batch():
    profile = hold(70.0, 1.0)
    rigs = [_rig(31), _rig(32)]
    mixed = MixedEngine(rigs).run(profile)
    plain = BatchEngine([_rig(31), _rig(32)]).run(profile)
    for pos in range(2):
        _assert_rows_equal(mixed, pos, plain, pos)


def test_mixed_advance_windows_match_one_shot():
    profile = staircase([0.0, 90.0], dwell_s=1.0)
    engine = MixedEngine(_mixed_fleet())
    windows = [engine.advance(profile, 700),
               engine.advance(profile, 800),
               engine.advance(profile, 500)]
    stitched = RunResult.concat(windows, axis="time")
    one_shot = MixedEngine(_mixed_fleet()).run(profile)
    for pos in range(4):
        _assert_rows_equal(stitched, pos, one_shot, pos)


def test_mixed_drop_preserves_survivor_bits():
    profile = hold(60.0, 1.0)
    engine = MixedEngine(_mixed_fleet())
    first = engine.advance(profile, 500)
    engine.drop([1])  # caller index 1 lives in the second config group
    assert engine.n_monitors == 3
    rest = engine.advance(profile, 500)

    untouched = MixedEngine(_mixed_fleet())
    ref_first = untouched.advance(profile, 500)
    ref_rest = untouched.advance(profile, 500)
    survivors = [0, 2, 3]
    for row, pos in enumerate(survivors):
        _assert_rows_equal(first, pos, ref_first, pos)
        _assert_rows_equal(rest, row, ref_rest, pos)


def test_mixed_drop_validates_indices():
    engine = MixedEngine(_mixed_fleet())
    with pytest.raises(ConfigurationError):
        engine.drop([4])
    with pytest.raises(ConfigurationError):
        engine.drop([0, 0])
    engine.drop([0, 1, 2, 3])  # emptying the fleet is allowed ...
    with pytest.raises(ConfigurationError):
        engine.advance(hold(50.0, 1.0), 100)  # ... advancing it is not


def test_mixed_sharded_run_is_one_shot():
    profile = hold(50.0, 0.5)
    engine = MixedEngine(_mixed_fleet())
    engine.run(profile, workers=2)
    with pytest.raises(ConfigurationError):
        engine.run(profile, workers=2)
    with pytest.raises(ConfigurationError):
        engine.advance(profile, 100)
