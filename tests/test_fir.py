"""Unit tests for the FIR IP and its fixed-point bit-exactness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.fir import FirFilter, design_lowpass_fir
from repro.isif.fixed_point import QFormat

Q = QFormat(1, 14)


def test_validation():
    with pytest.raises(ConfigurationError):
        FirFilter(np.array([]))
    with pytest.raises(ConfigurationError):
        design_lowpass_fir(100.0, 1000.0, taps=10)  # even
    with pytest.raises(ConfigurationError):
        design_lowpass_fir(600.0, 1000.0)  # above Nyquist


def test_impulse_response_is_coefficients():
    coeffs = np.array([0.5, 0.3, 0.2])
    f = FirFilter(coeffs)
    impulse = [1.0, 0.0, 0.0, 0.0]
    out = [f.step(x) for x in impulse]
    assert out[:3] == pytest.approx(list(coeffs))
    assert out[3] == 0.0


def test_dc_gain():
    f = FirFilter(design_lowpass_fir(50.0, 1000.0, taps=31))
    assert f.dc_gain() == pytest.approx(1.0)
    out = 0.0
    for _ in range(100):
        out = f.step(1.0)
    assert out == pytest.approx(1.0, abs=1e-9)


def test_lowpass_rejects_stopband():
    fs = 1000.0
    f = FirFilter(design_lowpass_fir(50.0, fs, taps=63))
    t = np.arange(1000) / fs
    tone = np.sin(2 * np.pi * 300.0 * t)
    out = f.process(tone)[200:]
    assert np.std(out) < 0.01


def test_fixed_point_step_matches_step_codes():
    """The float wrapper and the integer core must agree exactly."""
    coeffs = design_lowpass_fir(100.0, 1000.0, taps=15)
    f1 = FirFilter(coeffs, qformat=Q)
    f2 = FirFilter(coeffs, qformat=Q)
    rng = np.random.default_rng(0)
    for _ in range(200):
        x = float(rng.uniform(-0.9, 0.9))
        a = f1.step(x)
        b = Q.to_float(f2.step_codes(Q.to_int(x)))
        assert a == b


def test_fixed_point_close_to_float():
    coeffs = design_lowpass_fir(100.0, 1000.0, taps=15)
    fx = FirFilter(coeffs, qformat=Q)
    fl = FirFilter(coeffs)
    rng = np.random.default_rng(1)
    x = rng.uniform(-0.9, 0.9, 300)
    err = fx.process(x) - fl.process(x)
    assert np.max(np.abs(err)) < 20 * Q.resolution


def test_hw_sw_bit_exact_twins():
    """Two instances with the same coefficients and inputs produce the
    identical code stream — the ISIF hw/sw matching property."""
    coeffs = design_lowpass_fir(80.0, 1000.0, taps=21)
    hw = FirFilter(coeffs, qformat=Q)
    sw = FirFilter(coeffs, qformat=Q)
    rng = np.random.default_rng(2)
    for _ in range(500):
        code = Q.to_int(float(rng.uniform(-1.0, 1.0)))
        assert hw.step_codes(code) == sw.step_codes(code)


def test_step_codes_without_qformat_rejected():
    with pytest.raises(ConfigurationError):
        FirFilter(np.array([1.0])).step_codes(1)


def test_reset():
    f = FirFilter(np.array([0.5, 0.5]))
    f.step(1.0)
    f.reset()
    assert f.step(0.0) == 0.0


def test_saturation_in_fixed_point():
    f = FirFilter(np.array([1.0, 1.0, 1.0]), qformat=Q)
    # Sum of three full-scale samples saturates instead of wrapping.
    for _ in range(3):
        out = f.step_codes(Q.max_int)
    assert out == Q.max_int
