"""Integration tests for the fleet-scale monitored network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.station.demand import DiurnalDemand
from repro.station.fleet import MeterCharacter, MonitoredNetwork
from repro.station.network import PipeNetwork


def build_fleet(seed=0):
    net = PipeNetwork()
    net.add_pipe("reservoir", "A")
    net.add_pipe("A", "B", demand_m3_s=0.8e-3)
    net.add_pipe("A", "C", demand_m3_s=0.6e-3)
    fleet = MonitoredNetwork(net, seed=seed)
    fleet.attach_demand("B", DiurnalDemand(0.8e-3, seed=seed + 1))
    fleet.attach_demand("C", DiurnalDemand(0.6e-3, seed=seed + 2))
    # Commissioning over a representative half-day learns the meter-pair
    # baselines (standing bias imbalance) before live monitoring.
    fleet.commission(hours=12.0, snapshot_s=300.0, start_h=0.0)
    return net, fleet


def test_meter_character_validation():
    with pytest.raises(ConfigurationError):
        MeterCharacter(bias_fraction=0.5)
    with pytest.raises(ConfigurationError):
        MeterCharacter(noise_mps=-1.0)


def test_run_validation():
    _, fleet = build_fleet()
    with pytest.raises(ConfigurationError):
        fleet.run(-1.0)


def test_healthy_day_no_alarms():
    """A full diurnal cycle with noisy, biased meters: zero false alarms."""
    _, fleet = build_fleet(seed=3)
    report = fleet.run(24.0, snapshot_s=60.0)
    assert report.events == []
    assert report.snapshots == 24 * 60
    assert 0.08 < report.night_fraction < 0.16  # 3h window of 24h


def test_night_leak_detected_and_localised():
    """A 02:00 leak in A->B is caught within the night window."""
    _, fleet = build_fleet(seed=4)
    area = np.pi * 0.025**2  # DN50
    leak_q = 0.05 * area  # 5 cm/s-equivalent loss
    report = fleet.run(6.0, snapshot_s=60.0,
                       leak=("A", "B", leak_q), leak_at_h=2.0)
    assert report.events
    first = report.events[0]
    assert first.segment == "A->B"
    assert first.time_s / 3600.0 < 3.5  # found within ~1.5 h of onset
    # The first alarm fires with mostly pre-leak samples in its window;
    # the re-armed follow-ups estimate the loss accurately.
    losses = [e.estimated_loss_mps for e in report.events[:4]]
    assert max(losses) == pytest.approx(0.05, rel=0.4)


def test_daytime_leak_detected_despite_demand_swings():
    _, fleet = build_fleet(seed=5)
    area = np.pi * 0.025**2
    report = fleet.run(12.0, snapshot_s=60.0,
                       leak=("A", "C", 0.08 * area), leak_at_h=8.0)
    assert any(e.segment == "A->C" for e in report.events)


def test_determinism_per_seed():
    _, fleet_a = build_fleet(seed=9)
    _, fleet_b = build_fleet(seed=9)
    ra = fleet_a.run(3.0, snapshot_s=120.0)
    rb = fleet_b.run(3.0, snapshot_s=120.0)
    assert ra.snapshots == rb.snapshots
    assert [e.segment for e in ra.events] == [e.segment for e in rb.events]
