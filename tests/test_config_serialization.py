"""Round-trip tests for config serialization and the v2 cal image."""

import json

import pytest

from repro.conditioning.cta import CTAConfig
from repro.conditioning.monitor import MonitorConfig, WaterFlowMonitor
from repro.errors import CalibrationError, ConfigurationError
from repro.isif.fixed_point import QFormat
from repro.sensor.maf import MAFConfig
from repro.sensor.membrane import (
    ORGANIC_FILL,
    WATER_BACKSIDE,
    BacksideFill,
    Membrane,
)


def _json_roundtrip(d):
    return json.loads(json.dumps(d))


@pytest.mark.parametrize("config", [
    MAFConfig(),
    MAFConfig(seed=99, medium="air", enable_fouling=False,
              wake_peak_coupling=0.1),
    CTAConfig(),
    CTAConfig(overtemperature_k=8.0, qformat=None),
    CTAConfig(qformat=QFormat(4, 18)),
    MonitorConfig(),
    MonitorConfig(use_pulsed_drive=False, temperature_compensation=True,
                  cta=CTAConfig(ki=15_000.0)),
], ids=lambda c: type(c).__name__)
def test_config_roundtrip(config):
    image = _json_roundtrip(config.to_dict())
    assert type(config).from_dict(image) == config


def test_mafconfig_roundtrip_builds_identical_sensor():
    from repro.sensor.maf import MAFSensor
    cfg = MAFConfig(seed=7)
    clone = MAFConfig.from_dict(_json_roundtrip(cfg.to_dict()))
    a, b = MAFSensor(cfg), MAFSensor(clone)
    assert a.heater_a.resistance(288.15) == b.heater_a.resistance(288.15)
    assert a.reference.resistance(288.15) == b.reference.resistance(288.15)


def test_backside_fill_identity_restored():
    for canonical in (ORGANIC_FILL, WATER_BACKSIDE):
        restored = BacksideFill.from_dict(_json_roundtrip(canonical.to_dict()))
        assert restored is canonical
    custom = BacksideFill("aerogel", 0.02, 2.0)
    restored = BacksideFill.from_dict(custom.to_dict())
    assert restored == custom and restored is not ORGANIC_FILL


def test_membrane_roundtrip():
    membrane = Membrane(backside=WATER_BACKSIDE, heater_fraction=0.2)
    restored = Membrane.from_dict(_json_roundtrip(membrane.to_dict()))
    assert restored == membrane
    assert restored.backside is WATER_BACKSIDE


def test_from_dict_rejects_missing_fields():
    with pytest.raises(ConfigurationError):
        MAFConfig.from_dict({"seed": 1})
    with pytest.raises(ConfigurationError):
        CTAConfig.from_dict({"kp": 50.0})
    with pytest.raises(ConfigurationError):
        MonitorConfig.from_dict({"loop_rate_hz": 1000.0})


def test_from_dict_runs_validators():
    image = MAFConfig().to_dict()
    image["medium"] = "mercury"
    with pytest.raises(ConfigurationError):
        MAFConfig.from_dict(image)


def test_v2_calibration_image_roundtrip(tmp_path, shared_setup):
    image = {
        "format": "anemos-cal/2",
        **shared_setup.calibration.to_dict(),
        "monitor": shared_setup.monitor.config.to_dict(),
        "sensor": shared_setup.monitor.sensor.config.to_dict(),
    }
    path = tmp_path / "cal.json"
    path.write_text(json.dumps(image))
    monitor = WaterFlowMonitor.from_calibration_file(path)
    assert monitor.config == shared_setup.monitor.config
    assert monitor.sensor.config == shared_setup.monitor.sensor.config
    assert monitor.estimator.calibration.law == shared_setup.calibration.law


def test_legacy_flat_image_loads_with_note(tmp_path, capsys, shared_setup):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(shared_setup.calibration.to_dict()))
    monitor = WaterFlowMonitor.from_calibration_file(path, seed=5)
    assert monitor.sensor.config.seed == 5
    assert not monitor.config.use_pulsed_drive
    assert "legacy" in capsys.readouterr().err


def test_unknown_format_rejected(tmp_path, shared_setup):
    image = {**shared_setup.calibration.to_dict(), "format": "anemos-cal/99"}
    path = tmp_path / "future.json"
    path.write_text(json.dumps(image))
    with pytest.raises(CalibrationError):
        WaterFlowMonitor.from_calibration_file(path)


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(CalibrationError):
        WaterFlowMonitor.from_calibration_file(path)
