"""Unit tests for the turbulence / OU noise models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.physics.turbulence import FlowNoise, FlowNoiseConfig, OrnsteinUhlenbeck


def test_ou_validation(rng):
    with pytest.raises(ConfigurationError):
        OrnsteinUhlenbeck(tau_s=0.0, sigma=1.0, rng=rng)
    with pytest.raises(ConfigurationError):
        OrnsteinUhlenbeck(tau_s=1.0, sigma=-1.0, rng=rng)


def test_ou_zero_sigma_stays_zero(rng):
    ou = OrnsteinUhlenbeck(tau_s=1.0, sigma=0.0, rng=rng)
    assert all(ou.step(0.01) == 0.0 for _ in range(10))


def test_ou_stationary_std(rng):
    ou = OrnsteinUhlenbeck(tau_s=0.05, sigma=2.0, rng=rng)
    samples = np.array([ou.step(0.01) for _ in range(20000)])
    assert np.std(samples) == pytest.approx(2.0, rel=0.1)
    assert abs(np.mean(samples)) < 0.15


def test_ou_correlation_time(rng):
    tau = 0.1
    dt = 0.01
    ou = OrnsteinUhlenbeck(tau_s=tau, sigma=1.0, rng=rng)
    x = np.array([ou.step(dt) for _ in range(50000)])
    # Lag-1 autocorrelation should be exp(-dt/tau).
    r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
    assert r1 == pytest.approx(np.exp(-dt / tau), abs=0.03)


def test_ou_long_dt_statistics_still_correct(rng):
    """Exact discretisation: even dt >> tau keeps the stationary std."""
    ou = OrnsteinUhlenbeck(tau_s=0.001, sigma=1.5, rng=rng)
    samples = np.array([ou.step(1.0) for _ in range(5000)])
    assert np.std(samples) == pytest.approx(1.5, rel=0.1)


def test_ou_retune_validation(rng):
    ou = OrnsteinUhlenbeck(tau_s=1.0, sigma=1.0, rng=rng)
    with pytest.raises(ConfigurationError):
        ou.retune(tau_s=-1.0)
    with pytest.raises(ConfigurationError):
        ou.retune(sigma=-1.0)


def test_flow_noise_intensity_scales_with_speed(rng):
    noise = FlowNoise(rng)
    dt = 1e-3
    lo = np.array([noise.perturb(0.2, dt) - 0.2 for _ in range(20000)])
    hi = np.array([noise.perturb(2.0, dt) - 2.0 for _ in range(20000)])
    assert np.std(hi) > 3.0 * np.std(lo)


def test_flow_noise_floor_at_rest(rng):
    noise = FlowNoise(rng, FlowNoiseConfig(floor_mps=5e-3))
    samples = np.array([noise.perturb(0.0, 1e-3) for _ in range(20000)])
    assert np.std(samples) == pytest.approx(5e-3, rel=0.2)


def test_flow_noise_preserves_mean(rng):
    noise = FlowNoise(rng)
    samples = np.array([noise.perturb(1.0, 1e-3) for _ in range(30000)])
    assert np.mean(samples) == pytest.approx(1.0, abs=0.02)


def test_flow_noise_invalid_intensity(rng):
    with pytest.raises(ConfigurationError):
        FlowNoise(rng, FlowNoiseConfig(intensity=1.5))


def test_deterministic_given_seed():
    a = FlowNoise(np.random.default_rng(9))
    b = FlowNoise(np.random.default_rng(9))
    for _ in range(100):
        assert a.perturb(1.0, 1e-3) == b.perturb(1.0, 1e-3)


@settings(max_examples=20)
@given(st.floats(min_value=-2.5, max_value=2.5))
def test_flow_noise_finite_for_any_speed(v):
    noise = FlowNoise(np.random.default_rng(1))
    for _ in range(50):
        assert np.isfinite(noise.perturb(v, 1e-3))
