"""Unit tests for the IIR IPs (one-pole and biquad)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat
from repro.isif.iir import IIRBiquad, OnePoleLowpass, design_lowpass_biquad

Q = QFormat(3, 16)


def test_onepole_validation():
    with pytest.raises(ConfigurationError):
        OnePoleLowpass(0.0, 1000.0)
    with pytest.raises(ConfigurationError):
        OnePoleLowpass(600.0, 1000.0)


def test_onepole_dc_tracking():
    f = OnePoleLowpass(10.0, 1000.0)
    out = 0.0
    for _ in range(2000):
        out = f.step(1.0)
    assert out == pytest.approx(1.0, abs=1e-6)


def test_onepole_alpha_formula():
    f = OnePoleLowpass(100.0, 1000.0)
    assert f.alpha == pytest.approx(1.0 - np.exp(-2 * np.pi * 0.1))


def test_onepole_settling_time():
    """The paper's 0.1 Hz filter: 1% settling in ~7.3 s."""
    f = OnePoleLowpass(0.1, 1000.0)
    assert f.settling_time_s(0.01) == pytest.approx(7.33, abs=0.1)


def test_onepole_attenuates_above_corner():
    fs, fc = 1000.0, 1.0
    f = OnePoleLowpass(fc, fs)
    t = np.arange(5000) / fs
    tone = np.sin(2 * np.pi * 50.0 * t)
    out = f.process(tone)[1000:]
    assert np.std(out) < 0.05 * np.std(tone)


def test_onepole_reset_preset():
    f = OnePoleLowpass(0.1, 1000.0)
    f.reset(2.0)
    assert f.step(2.0) == pytest.approx(2.0, abs=1e-9)


def test_onepole_fixed_point_matches_wrapper():
    f1 = OnePoleLowpass(5.0, 1000.0, qformat=Q)
    f2 = OnePoleLowpass(5.0, 1000.0, qformat=Q)
    rng = np.random.default_rng(0)
    for _ in range(300):
        x = float(rng.uniform(-2.0, 2.0))
        assert f1.step(x) == Q.to_float(f2.step_codes(Q.to_int(x)))


def test_onepole_shift_alpha_mode():
    """Power-of-two alpha (barrel shifter IP): alpha = 2^-k."""
    f = OnePoleLowpass(5.0, 1000.0, qformat=Q, shift_alpha=True)
    assert f.shift_bits is not None
    assert f.alpha == 2.0 ** (-f.shift_bits)
    out = 0.0
    for _ in range(5000):
        out = f.step(1.0)
    assert out == pytest.approx(1.0, abs=1e-3)


def test_onepole_fixed_point_dc_error_bounded():
    f = OnePoleLowpass(1.0, 1000.0, qformat=Q)
    out = 0.0
    for _ in range(20000):
        out = f.step(1.5)
    # Integer deadband: error bounded by alpha quantisation effects.
    assert out == pytest.approx(1.5, abs=0.01)


def test_biquad_validation():
    with pytest.raises(ConfigurationError):
        IIRBiquad(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
    with pytest.raises(ConfigurationError):
        IIRBiquad(np.array([1.0, 0.0, 0.0]), np.array([-2.5, 1.0]))  # unstable


def test_biquad_design_dc_gain_unity():
    b, a = design_lowpass_biquad(50.0, 1000.0)
    f = IIRBiquad(b, a)
    assert f.dc_gain() == pytest.approx(1.0, abs=1e-9)
    out = 0.0
    for _ in range(1000):
        out = f.step(1.0)
    assert out == pytest.approx(1.0, abs=1e-6)


def test_biquad_stopband():
    fs = 1000.0
    b, a = design_lowpass_biquad(20.0, fs)
    f = IIRBiquad(b, a)
    t = np.arange(4000) / fs
    tone = np.sin(2 * np.pi * 300.0 * t)
    out = f.process(tone)[1000:]
    assert np.std(out) < 0.01 * np.std(tone)


def test_biquad_a0_normalisation():
    b = np.array([0.5, 1.0, 0.5])
    a3 = np.array([2.0, -1.0, 0.5])
    f = IIRBiquad(b, a3)
    assert f.a == pytest.approx([-0.5, 0.25])
    assert f.b == pytest.approx([0.25, 0.5, 0.25])


def test_biquad_fixed_point_bit_exact_twins():
    b, a = design_lowpass_biquad(100.0, 1000.0)
    hw = IIRBiquad(b, a, qformat=Q)
    sw = IIRBiquad(b, a, qformat=Q)
    rng = np.random.default_rng(3)
    for _ in range(500):
        code = Q.to_int(float(rng.uniform(-2.0, 2.0)))
        assert hw.step_codes(code) == sw.step_codes(code)


def test_biquad_fixed_point_tracks_float():
    b, a = design_lowpass_biquad(100.0, 1000.0)
    fx = IIRBiquad(b, a, qformat=Q)
    fl = IIRBiquad(b, a)
    rng = np.random.default_rng(4)
    x = rng.uniform(-1.0, 1.0, 500)
    err = fx.process(x) - fl.process(x)
    assert np.max(np.abs(err)) < 100 * Q.resolution


def test_biquad_reset():
    b, a = design_lowpass_biquad(100.0, 1000.0)
    f = IIRBiquad(b, a)
    f.step(1.0)
    f.reset()
    assert f.step(0.0) == 0.0


def test_design_validation():
    with pytest.raises(ConfigurationError):
        design_lowpass_biquad(600.0, 1000.0)
    with pytest.raises(ConfigurationError):
        design_lowpass_biquad(100.0, 1000.0, q_factor=0.0)
