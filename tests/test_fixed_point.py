"""Unit and property tests for Q-format fixed-point arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat

Q3_12 = QFormat(3, 12)


def test_validation():
    with pytest.raises(ConfigurationError):
        QFormat(-1, 4)
    with pytest.raises(ConfigurationError):
        QFormat(40, 40)


def test_width_and_ranges():
    assert Q3_12.width == 16
    assert Q3_12.max_int == 2**15 - 1
    assert Q3_12.min_int == -(2**15)
    assert Q3_12.max_value == pytest.approx((2**15 - 1) / 4096)
    assert Q3_12.resolution == pytest.approx(1 / 4096)


def test_roundtrip_exact_values():
    for v in [0.0, 1.0, -1.0, 1.5, -2.25, 0.000244140625]:
        assert Q3_12.to_float(Q3_12.to_int(v)) == v


def test_rounding_half_up():
    # 0.5 LSB rounds away from... half-up convention: +0.5 LSB -> +1 code.
    half_lsb = Q3_12.resolution / 2.0
    assert Q3_12.to_int(half_lsb) == 1
    assert Q3_12.to_int(half_lsb * 0.99) == 0


def test_saturation():
    assert Q3_12.to_int(1000.0) == Q3_12.max_int
    assert Q3_12.to_int(-1000.0) == Q3_12.min_int
    assert Q3_12.saturate(Q3_12.max_int + 5) == Q3_12.max_int


def test_add_saturates():
    assert Q3_12.add(Q3_12.max_int, 10) == Q3_12.max_int
    assert Q3_12.add(100, 200) == 300


def test_mul_matches_float_within_lsb():
    a, b = 1.25, 2.5
    code = Q3_12.mul(Q3_12.to_int(a), Q3_12.to_int(b))
    assert Q3_12.to_float(code) == pytest.approx(a * b, abs=Q3_12.resolution)


def test_mul_mixed_formats():
    q_coeff = QFormat(0, 15)
    x = Q3_12.to_int(2.0)
    c = q_coeff.to_int(0.5)
    result = Q3_12.mul(x, c, other=q_coeff)
    assert Q3_12.to_float(result) == pytest.approx(1.0, abs=Q3_12.resolution)


def test_rescale_up_down():
    q_wide = QFormat(3, 20)
    code = Q3_12.to_int(1.5)
    wide = q_wide.rescale(code, Q3_12)
    assert q_wide.to_float(wide) == 1.5
    back = Q3_12.rescale(wide, q_wide)
    assert back == code


@given(st.floats(min_value=-7.9, max_value=7.9))
def test_quantize_error_bounded(v):
    assert abs(Q3_12.quantize(v) - v) <= Q3_12.resolution / 2.0 + 1e-12


@given(st.integers(min_value=-(2**15), max_value=2**15 - 1),
       st.integers(min_value=-(2**15), max_value=2**15 - 1))
def test_add_never_overflows_range(a, b):
    out = Q3_12.add(a, b)
    assert Q3_12.min_int <= out <= Q3_12.max_int


@given(st.floats(min_value=-2.0, max_value=2.0),
       st.floats(min_value=-2.0, max_value=2.0))
def test_mul_error_bounded(a, b):
    code = Q3_12.mul(Q3_12.to_int(a), Q3_12.to_int(b))
    # Two quantisations + one rounding: error < ~3 LSB of inputs scaled.
    assert abs(Q3_12.to_float(code) - a * b) < 4.0 * Q3_12.resolution
