"""Unit tests for the CIC decimator and droop compensation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.decimator import CICDecimator, droop_compensation_fir


def test_validation():
    with pytest.raises(ConfigurationError):
        CICDecimator(order=0)
    with pytest.raises(ConfigurationError):
        CICDecimator(order=7)
    with pytest.raises(ConfigurationError):
        CICDecimator(rate=1)


def test_dc_gain():
    cic = CICDecimator(order=3, rate=16)
    assert cic.gain == 16**3
    out = cic.decimate(np.ones(16 * 10, dtype=np.int64))
    # After the pipeline fills, each output equals the DC gain.
    assert out[-1] == cic.gain


def test_output_rate():
    cic = CICDecimator(order=2, rate=8)
    out = cic.decimate(np.ones(80, dtype=np.int64))
    assert len(out) == 10


def test_streaming_phase_persistence():
    """Feeding sample-by-sample must equal feeding one block."""
    block = np.arange(1, 65, dtype=np.int64)
    whole = CICDecimator(order=3, rate=8).decimate(block)
    stream = CICDecimator(order=3, rate=8)
    collected = []
    for s in block:
        collected.extend(stream.decimate(np.array([s])))
    assert np.array_equal(whole, np.array(collected))


def test_integer_exactness():
    """CIC on a bitstream is exact integer arithmetic: re-running the
    same input must give identical outputs."""
    rng = np.random.default_rng(0)
    bits = rng.choice([-1, 1], size=512).astype(np.int64)
    a = CICDecimator(order=3, rate=32).decimate(bits)
    b = CICDecimator(order=3, rate=32).decimate(bits)
    assert np.array_equal(a, b)


def test_alternating_input_rejected():
    """A Nyquist-rate tone (worst-case shaped noise) must be crushed."""
    n, r = 640, 32
    alternating = np.resize(np.array([1, -1], dtype=np.int64), n)
    out = CICDecimator(order=3, rate=r).decimate(alternating)
    assert np.all(np.abs(out[2:]) <= 4)  # ~0 vs DC gain 32768


def test_reset():
    cic = CICDecimator(order=2, rate=4)
    cic.decimate(np.ones(10, dtype=np.int64))
    cic.reset()
    out = cic.decimate(np.ones(40, dtype=np.int64))
    assert out[-1] == cic.gain


def test_droop_compensation_validation():
    with pytest.raises(ConfigurationError):
        droop_compensation_fir(3, 64, taps=4)


def test_droop_compensation_shape():
    fir = droop_compensation_fir(order=3, rate=64, taps=15)
    assert len(fir) == 15
    assert np.allclose(fir, fir[::-1])  # linear phase


def test_droop_compensation_boosts_band_edge():
    """The compensator must have gain > 1 at the band edge where the
    CIC droops, and ~1 at DC."""
    fir = droop_compensation_fir(order=3, rate=16, taps=15)
    w = np.linspace(0, np.pi / 2, 256)
    h = np.abs(np.array([np.sum(fir * np.exp(-1j * wk * np.arange(15))) for wk in w]))
    assert h[0] == pytest.approx(1.0, abs=0.05)
    assert h[-1] > h[0]
