"""Tests for the bubble purge controller."""

import pytest

from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.diagnostics import HealthStatus
from repro.conditioning.purge import PurgeConfig, PurgeController
from repro.errors import ConfigurationError, SensorFault
from repro.isif.platform import ISIFPlatform
from repro.sensor.fouling import FoulingConfig
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

# Worst case for bubbles: near-stagnant, 1 bar, air-style overtemperature.
COND = FlowConditions(speed_mps=0.03, pressure_pa=1.0e5)


def bubbled_controller(seed=61):
    """A loop driven into visible bubble coverage."""
    sensor = MAFSensor(MAFConfig(seed=seed))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=seed),
                               CTAConfig(overtemperature_k=40.0))
    supervisor = PurgeController(controller)
    for _ in range(30_000):  # 30 s of continuous hot drive
        supervisor.step(COND)
    return supervisor


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PurgeConfig(off_time_s=0.0)
    with pytest.raises(ConfigurationError):
        PurgeConfig(max_attempts=0)
    with pytest.raises(ConfigurationError):
        PurgeConfig(coverage_ok=1.5)


def test_bubbles_grow_and_health_degrades():
    supervisor = bubbled_controller()
    assert supervisor.worst_coverage() > 0.3
    assert supervisor.health.status() is not HealthStatus.HEALTHY


def test_purge_clears_bubbles():
    supervisor = bubbled_controller(seed=62)
    attempts = supervisor.recover(COND)
    assert attempts <= supervisor.config.max_attempts
    assert supervisor.worst_coverage() < supervisor.config.coverage_ok
    assert supervisor.purge_count == attempts
    assert supervisor.health.status() is HealthStatus.HEALTHY


def test_loop_operational_after_purge_at_safe_setpoint():
    """recover() retrims to the paper's reduced overtemperature so the
    bubbles do not simply regrow."""
    supervisor = bubbled_controller(seed=63)
    supervisor.recover(COND, safe_overtemperature_k=5.0)
    tel = supervisor.controller.settle(COND, 1.0)
    d_t = tel.readout.heater_a_temperature_k - COND.temperature_k
    assert d_t == pytest.approx(5.0, abs=1.0)  # re-regulating, safely
    assert supervisor.worst_coverage() < 0.05  # and staying clean


def test_non_bubble_degradation_escalates():
    """A fouled (not bubbled) surface does not respond to purging: the
    controller must escalate instead of purging forever."""
    sensor = MAFSensor(MAFConfig(
        seed=64, fouling_config=FoulingConfig(adhesion_factor=1.0)))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=64))
    supervisor = PurgeController(
        controller, config=PurgeConfig(coverage_ok=1e-9, max_attempts=2))
    # Force an artificial "dirty" verdict: coverage_ok is unreachable
    # because even a clean surface has coverage 0.0 — use a tiny bubble
    # residue instead by growing some first.
    sensor.bubbles_a._coverage = 0.5  # stuck deposit masquerading as bubbles
    sensor.bubbles_a.config = sensor.bubbles_a.config.__class__(
        idle_detach_per_s=0.0, base_detach_per_s=0.0)
    with pytest.raises(SensorFault):
        supervisor.recover(COND)
    assert supervisor.purge_count == 2
