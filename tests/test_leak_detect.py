"""Unit tests for the leak-detection application."""

import numpy as np
import pytest

from repro.conditioning.leak_detect import (
    CusumDetector,
    LeakDetector,
    NetworkSegmentMonitor,
)
from repro.errors import ConfigurationError


def test_cusum_validation():
    with pytest.raises(ConfigurationError):
        CusumDetector(drift=-1.0, threshold=1.0)
    with pytest.raises(ConfigurationError):
        CusumDetector(drift=0.0, threshold=0.0)


def test_cusum_ignores_zero_mean_noise():
    det = CusumDetector(drift=0.05, threshold=5.0)
    rng = np.random.default_rng(0)
    fired = any(det.update(float(rng.normal(0.0, 0.03))) for _ in range(20000))
    assert not fired


def test_cusum_detects_persistent_shift():
    det = CusumDetector(drift=0.05, threshold=5.0)
    rng = np.random.default_rng(1)
    steps = 0
    for _ in range(10000):
        steps += 1
        if det.update(0.2 + float(rng.normal(0.0, 0.03))):
            break
    assert steps < 100


def test_cusum_reset():
    det = CusumDetector(drift=0.0, threshold=1.0)
    det.update(0.9)
    det.reset()
    assert det.statistic == 0.0


def test_segment_balance_clean():
    seg = NetworkSegmentMonitor("seg1")
    rng = np.random.default_rng(2)
    dt = 1.0
    fired = any(
        seg.update(1.0 + rng.normal(0, 0.005), 1.0 + rng.normal(0, 0.005), dt)
        for _ in range(5000))
    assert not fired
    assert abs(seg.mean_imbalance_mps()) < 0.01


def test_segment_detects_leak():
    seg = NetworkSegmentMonitor("seg1", drift_mps=0.01, threshold_mps_s=2.0)
    rng = np.random.default_rng(3)
    dt = 1.0
    t_detect = None
    for i in range(5000):
        leak = 0.06  # 6 cm/s lost in the segment
        if seg.update(1.0 + rng.normal(0, 0.005),
                      1.0 - leak + rng.normal(0, 0.005), dt):
            t_detect = i
            break
    assert t_detect is not None and t_detect < 120
    assert seg.mean_imbalance_mps() == pytest.approx(0.06, abs=0.01)


def test_segment_area_scaling():
    """A reducer (outlet pipe half the area) doubles the outlet speed —
    the balance must account for that, not flag a leak."""
    seg = NetworkSegmentMonitor("reducer", area_ratio=0.5)
    fired = any(seg.update(1.0, 2.0, 1.0) for _ in range(2000))
    assert not fired


def test_detector_topology():
    det = LeakDetector()
    det.add_segment(NetworkSegmentMonitor("a"))
    det.add_segment(NetworkSegmentMonitor("b"))
    assert det.segments == ("a", "b")
    with pytest.raises(ConfigurationError):
        det.add_segment(NetworkSegmentMonitor("a"))
    with pytest.raises(ConfigurationError):
        det.update({"ghost": (1.0, 1.0)}, 1.0)


def test_detector_localises_the_leaking_segment():
    det = LeakDetector()
    det.add_segment(NetworkSegmentMonitor("up", threshold_mps_s=2.0))
    det.add_segment(NetworkSegmentMonitor("down", threshold_mps_s=2.0))
    rng = np.random.default_rng(4)
    events = []
    for _ in range(2000):
        noise = lambda: float(rng.normal(0, 0.004))
        readings = {
            "up": (1.0 + noise(), 1.0 + noise()),           # healthy
            "down": (1.0 + noise(), 0.93 + noise()),        # leaking
        }
        events.extend(det.update(readings, 1.0))
        if events:
            break
    assert events
    assert events[0].segment == "down"
    assert events[0].estimated_loss_mps == pytest.approx(0.07, abs=0.02)
    assert det.events == tuple(events)


def test_detector_rearms_after_event():
    det = LeakDetector()
    det.add_segment(NetworkSegmentMonitor("s", threshold_mps_s=0.5))
    first = []
    for _ in range(100):
        first.extend(det.update({"s": (1.0, 0.8)}, 1.0))
        if first:
            break
    assert first
    # Continues monitoring and can fire again.
    second = []
    for _ in range(100):
        second.extend(det.update({"s": (1.0, 0.8)}, 1.0))
        if second:
            break
    assert second
