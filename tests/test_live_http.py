"""Live HTTP-plane tests: endpoints, service wiring, streaming parity.

The server is stdlib-only (``http.server`` on a daemon thread), so the
tests scrape it with plain urllib.  The load-bearing acceptance claim
rides here: with the sampler and HTTP plane running, ``/metrics`` and
``/health`` serve live data from a resident :class:`FleetService`
*while the client's streamed result stays bit-identical* to a
standalone ``Session.run``.
"""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import observability as obs
from repro.observability import (EventLog, MetricsRegistry, Tracer,
                                 parse_prometheus)
from repro.observability.live import LiveServer, SnapshotPipeline
from repro.observability.live.http import PROMETHEUS_CONTENT_TYPE
from repro.runtime import RunResult, Session
from repro.service import FleetService
from repro.station.profiles import hold

pytestmark = [pytest.mark.live, pytest.mark.service]


@pytest.fixture
def fresh():
    """Fresh enabled default registry/tracer/log; restore afterwards."""
    old_reg = obs.get_registry()
    old_tr = obs.get_tracer()
    old_log = obs.get_event_log()
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    yield registry, tracer, log
    obs.set_registry(old_reg)
    obs.set_tracer(old_tr)
    obs.set_event_log(old_log)


def get(url, path):
    """GET a path; returns (status, content_type, body_text)."""
    try:
        with urllib.request.urlopen(url + path, timeout=10.0) as response:
            return (response.status, response.headers.get("Content-Type"),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), \
            exc.read().decode("utf-8")


async def wait_until(predicate, timeout=30.0):
    """Yield to the service loop until ``predicate()`` holds, bounded."""

    async def poll():
        while not predicate():
            await asyncio.sleep(0)

    await asyncio.wait_for(poll(), timeout=timeout)


def standalone(profile, *, n_monitors, seed):
    with Session(n_monitors=n_monitors, seed=seed,
                 fast_calibration=True) as session:
        session.calibrate()
        return session.run(profile)


# -- the server in isolation --------------------------------------------------


def test_endpoints_and_error_paths(fresh):
    registry, _, _ = fresh
    registry.counter("unit.count").inc(7)
    registry.histogram("unit.hist").observe(0.25)
    pipe = SnapshotPipeline(registry=registry, clock=lambda: 0.0)
    pipe.sample()
    ready = {"value": True}
    with LiveServer(registry=registry, pipeline=pipe,
                    health_source=lambda: {"status": "ok", "clients": 2},
                    ready_source=lambda: ready["value"]) as server:
        url = server.url
        assert server.running and server.port > 0

        status, ctype, body = get(url, "/metrics")
        assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus(body)
        assert parsed["unit.count"] == {"type": "counter", "value": 7}
        assert parsed["unit.hist"]["count"] == 1

        status, ctype, body = get(url, "/health")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body) == {"status": "ok", "clients": 2}

        assert get(url, "/ready")[:1] == (200,)
        ready["value"] = False
        status, _, body = get(url, "/ready")
        assert status == 503 and body == "not ready\n"

        status, _, body = get(url, "/snapshot?last=1")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 1
        assert payload["samples"][0]["delta"]["unit.count"]["value"] == 7

        assert get(url, "/snapshot?last=nope")[0] == 400
        assert get(url, "/nothing-here")[0] == 404
    assert not server.running


def test_snapshot_404_without_pipeline_and_default_sources(fresh):
    with LiveServer() as server:
        status, _, body = get(server.url, "/snapshot")
        assert status == 404 and "no snapshot pipeline" in body
        # Default sources: /health says ok, /ready says ready.
        assert json.loads(get(server.url, "/health")[2]) == {"status": "ok"}
        assert get(server.url, "/ready")[0] == 200


def test_health_source_exception_is_a_500_not_a_crash(fresh):
    def boom():
        raise RuntimeError("scorer down")
    with LiveServer(health_source=boom) as server:
        status, _, body = get(server.url, "/health")
        assert status == 500 and "RuntimeError" in body
        # the server survives and keeps serving other routes
        assert get(server.url, "/ready")[0] == 200


# -- wired into a resident FleetService ---------------------------------------


def test_service_live_plane_serves_mid_run_and_streams_stay_bit_exact(fresh):
    profile = hold(60.0, 10.0)  # 10000 steps

    async def main():
        async with FleetService(tick_steps=100, max_pending=3,
                                http_port=0, sample_every_s=0.02) as service:
            assert service.pipeline is not None and service.pipeline.running
            url = service.http_url
            assert url is not None
            client = await service.attach(profile, seed=9,
                                          fast_calibration=True)
            # Let the tick loop run unconsumed until backpressure provably
            # holds the run mid-flight, with sampler frames in the ring.
            await wait_until(
                lambda: client.stream_depth == 3 and
                service.stats()["backpressure_stalls"] > 0 and
                len(service.pipeline) >= 2)

            scrapes = {path: get(url, path) for path in
                       ("/metrics", "/health", "/ready", "/snapshot?last=4")}
            client_health = client.health()
            snaps = [snap async for snap in client.snapshots()]
            result = await client.result()
        return scrapes, client_health, snaps, result, service

    scrapes, client_health, snaps, result, service = asyncio.run(main())

    status, ctype, body = scrapes["/metrics"]
    assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
    metrics = parse_prometheus(body)
    assert metrics["service.ticks"]["value"] > 0
    assert metrics["service.attaches"]["value"] == 1
    assert metrics["service.backpressure.stalls"]["value"] > 0
    assert metrics["service.tick.wall_s"]["count"] > 0
    assert metrics["service.queue.depth"]["value"] == 3
    assert metrics["service.group.1.queue_depth"]["value"] == 3
    assert "service.health.worst" in metrics

    status, _, body = scrapes["/health"]
    health = json.loads(body)
    assert status == 200
    assert health["status"] == "ok" and health["running"]
    assert health["clients"] == 1 and health["groups"] == 1
    assert health["backpressure"]["stalls"] > 0
    assert 0.0 <= health["backpressure"]["saturation"] < 0.9
    assert health["worst_rigs"] and \
        health["worst_rigs"][0]["rig"] == 0

    assert scrapes["/ready"][0] == 200

    status, _, body = scrapes["/snapshot?last=4"]
    snapshot = json.loads(body)
    assert status == 200 and 1 <= snapshot["count"] <= 4
    assert "service.tick.wall_s" in snapshot["metrics"]
    extras = [s["extra"] for s in snapshot["samples"]]
    assert any("service" in e and "health" in e for e in extras)

    # The client-side scoring surface mirrors the service's trackers.
    assert [r["rig"] for r in client_health] == [0]
    assert {"score", "status", "components"} <= set(client_health[0])

    # The acceptance bar: live plane on, streams bit-identical anyway.
    assert len(snaps) == 100 and len(result) == 500
    reference = standalone(profile, n_monitors=1, seed=9)
    assert np.array_equal(result.time_s, reference.time_s)
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(getattr(result, name),
                              getattr(reference, name)), name

    # Teardown released the plane: socket closed, URL gone.
    assert service.http_url is None
    assert not service.pipeline.running


def test_http_port_implies_sampler_and_ready_tracks_lifecycle(fresh):
    async def main():
        service = FleetService(http_port=0)
        assert service.pipeline is None  # nothing before start
        await service.start()
        url = service.http_url
        ok_ready = get(url, "/ready")
        health = json.loads(get(url, "/health")[2])
        await service.stop()
        return service, ok_ready, health

    service, ok_ready, health = asyncio.run(main())
    # http_port alone implies the default 0.5 s sampler cadence.
    assert service.pipeline is not None
    assert service.pipeline.cadence_s == 0.5
    assert ok_ready[0] == 200
    assert health["status"] == "ok"
    assert health["worst_rigs"] == []
    assert service.http_url is None  # plane torn down with the service
