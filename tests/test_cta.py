"""Integration tests for the constant-temperature loop."""

import numpy as np
import pytest

from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.drive import PulsedDrive
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

COND = FlowConditions(speed_mps=1.0)


def make_controller(overtemperature_k=5.0, drive=None, seed=11, **cta_kw):
    sensor = MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(seed=seed)
    cfg = CTAConfig(overtemperature_k=overtemperature_k, **cta_kw)
    return CTAController(sensor, platform, cfg, drive=drive)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CTAConfig(overtemperature_k=-1.0)
    with pytest.raises(ConfigurationError):
        CTAConfig(startup_supply_v=99.0)


def test_loop_holds_overtemperature():
    """The defining CT property: wire sits ~setpoint above the water."""
    c = make_controller(overtemperature_k=5.0)
    tel = c.settle(COND, 1.0)
    d_t = tel.readout.heater_a_temperature_k - COND.temperature_k
    assert d_t == pytest.approx(5.0, abs=0.6)
    assert abs(tel.error_a_v) < 2e-3  # bridge essentially nulled


def test_loop_holds_setpoint_across_flows():
    c = make_controller()
    d_ts = []
    for v in [0.1, 0.8, 2.0]:
        tel = c.settle(FlowConditions(speed_mps=v), 0.8)
        d_ts.append(tel.readout.heater_a_temperature_k - COND.temperature_k)
    assert np.ptp(d_ts) < 0.5  # constant temperature across the range


def test_supply_rises_with_flow():
    """'the voltage supplied to the two bridges is proportional to the
    water flow' — monotone, King-compressed."""
    c = make_controller()
    supplies = [c.settle(FlowConditions(speed_mps=v), 0.8).supply_a_v
                for v in [0.0, 0.5, 1.0, 2.0, 2.5]]
    assert all(b > a for a, b in zip(supplies, supplies[1:]))
    # Compression: the last 0.5 m/s adds less than the first 0.5 m/s.
    assert supplies[1] - supplies[0] > supplies[4] - supplies[3]


def test_supply_stays_within_dac_range():
    c = make_controller()
    tel = c.settle(FlowConditions(speed_mps=2.5), 1.0)
    assert 0.0 <= tel.supply_a_v <= 5.0


def test_conductance_tracks_physical_model():
    """Firmware G = P/ΔT must agree with the physical film conductance."""
    from repro.physics.convection import film_conductance
    c = make_controller()
    v = 1.0
    tel = c.settle(FlowConditions(speed_mps=v), 1.5)
    g_fw = c.conductance_from_supplies(tel.supply_a_v, tel.supply_b_v)
    t_wall = tel.readout.heater_a_temperature_k
    g_phys = float(film_conductance(v, c.sensor.config.geometry,
                                    t_wall, COND.temperature_k))
    # Within ~15 %: parasitics (membrane, backside) are part of G_fw.
    assert g_fw == pytest.approx(g_phys, rel=0.15)


def test_loop_recovers_from_flow_step():
    c = make_controller()
    c.settle(FlowConditions(speed_mps=0.3), 0.8)
    tel = c.settle(FlowConditions(speed_mps=2.0), 0.5)
    d_t = tel.readout.heater_a_temperature_k - COND.temperature_k
    assert d_t == pytest.approx(5.0, abs=0.6)


def test_pulsed_drive_deenergises_bridge():
    c = make_controller(drive=PulsedDrive(period_s=0.2, duty=0.5,
                                          blanking_s=0.02))
    powers = []
    for _ in range(400):
        tel = c.step(COND)
        powers.append(tel.readout.heater_a_power_w)
    powers = np.array(powers)
    assert np.sum(powers < 1e-6) > 150  # off phases actually off
    assert np.sum(powers > 1e-3) > 150  # on phases actually on


def test_pulsed_reheat_within_blanking():
    """After each off-phase the wire must be back at setpoint before the
    blanking window ends — otherwise the paper's scheme cannot work."""
    drive = PulsedDrive(period_s=0.2, duty=0.5, blanking_s=0.03)
    c = make_controller(drive=drive)
    for _ in range(2000):  # let everything converge over several periods
        c.step(COND)
    errors = []
    for _ in range(400):
        tel = c.step(COND)
        if tel.sample_valid:
            d_t = tel.readout.heater_a_temperature_k - COND.temperature_k
            errors.append(abs(d_t - 5.0))
    assert np.median(errors) < 0.7


def test_fixed_point_loop_equals_float_loop_closely():
    fx = make_controller()
    fl = make_controller(qformat=None)
    tel_fx = fx.settle(COND, 1.0)
    tel_fl = fl.settle(COND, 1.0)
    assert tel_fx.supply_a_v == pytest.approx(tel_fl.supply_a_v, abs=0.02)


def test_run_validation():
    c = make_controller()
    with pytest.raises(ConfigurationError):
        c.run(COND, 0.0)


def test_software_ips_registered():
    c = make_controller()
    names = c.platform.scheduler.task_names()
    assert "pi_controller_a" in names
    assert "reference_subtract_b" in names
    c.settle(COND, 0.1)
    assert c.platform.scheduler.utilization() < 0.05
