"""Tests for the online health diagnostics."""

import numpy as np
import pytest

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.diagnostics import (
    HealthStatus,
    LoopHealthMonitor,
    ZeroFlowDriftMonitor,
)
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.physics.kings_law import KingsLaw
from repro.sensor.bubbles import BubbleConfig
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

CAL = FlowCalibration(law=KingsLaw(1.2e-3, 4.4e-3, 0.5), overtemperature_k=5.0)


def test_drift_monitor_validation():
    with pytest.raises(ConfigurationError):
        ZeroFlowDriftMonitor(CAL, ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        ZeroFlowDriftMonitor(CAL, degraded_fraction=0.2, fault_fraction=0.1)
    with pytest.raises(ConfigurationError):
        ZeroFlowDriftMonitor(CAL).update(-1.0)


def test_drift_monitor_healthy_on_calibrated_readings(rng):
    mon = ZeroFlowDriftMonitor(CAL)
    for _ in range(100):
        mon.update(CAL.law.coeff_a * (1.0 + 0.005 * rng.normal()))
    assert abs(mon.drift_fraction()) < 0.02
    assert mon.status() is HealthStatus.HEALTHY


def test_drift_monitor_flags_fouling(rng):
    """Fouling lowers the zero-flow conductance: −8 % → DEGRADED,
    −20 % → FAULT."""
    degraded = ZeroFlowDriftMonitor(CAL)
    for _ in range(100):
        degraded.update(CAL.law.coeff_a * 0.92)
    assert degraded.status() is HealthStatus.DEGRADED
    assert degraded.drift_fraction() < 0.0  # loss, as fouling causes

    fouled = ZeroFlowDriftMonitor(CAL)
    for _ in range(100):
        fouled.update(CAL.law.coeff_a * 0.80)
    assert fouled.status() is HealthStatus.FAULT


def test_drift_monitor_needs_training():
    mon = ZeroFlowDriftMonitor(CAL)
    mon.update(CAL.law.coeff_a * 0.5)  # single wild sample
    assert mon.status() is HealthStatus.HEALTHY  # not enough evidence yet


def test_loop_monitor_healthy_loop():
    sensor = MAFSensor(MAFConfig(seed=41, enable_bubbles=False,
                                 enable_fouling=False))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=41))
    mon = LoopHealthMonitor()
    controller.settle(FlowConditions(speed_mps=1.0), 0.3)
    for _ in range(600):
        mon.update(controller.step(FlowConditions(speed_mps=1.0)))
    assert mon.status() is HealthStatus.HEALTHY
    assert mon.error_rms_v() < 2e-3


def test_loop_monitor_flags_bubbling_loop():
    """An air-style overtemperature in stagnant water bubbles up; the
    monitor must catch it."""
    sensor = MAFSensor(MAFConfig(seed=42))
    controller = CTAController(
        sensor, ISIFPlatform.for_anemometer(seed=42),
        CTAConfig(overtemperature_k=40.0))
    mon = LoopHealthMonitor()
    cond = FlowConditions(speed_mps=0.03, pressure_pa=1.0e5)
    for _ in range(20_000):
        mon.update(controller.step(cond))
    assert mon.status() is not HealthStatus.HEALTHY


def test_loop_monitor_coverage_ack():
    mon = LoopHealthMonitor()
    mon._worst_coverage = 0.5  # simulate a past bubble event
    assert mon.status() is HealthStatus.FAULT
    mon.reset_coverage()
    assert mon.status() is HealthStatus.HEALTHY


def test_loop_monitor_validation():
    with pytest.raises(ConfigurationError):
        LoopHealthMonitor(window=5)
    with pytest.raises(ConfigurationError):
        LoopHealthMonitor(coverage_limit=2.0)
