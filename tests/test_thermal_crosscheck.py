"""Cross-check: the MAF's hand-rolled exponential thermal updates
against the generic implicit-Euler ThermalNetwork.

The sensor model integrates its heater nodes with a closed-form
exponential step (fast path); the generic network solves the same ODEs
implicitly.  Both must agree on the transient and the equilibrium of an
equivalent single-heater problem — a strong guard against sign or
coupling mistakes in either implementation.
"""

import numpy as np
import pytest

from repro.physics.convection import WireGeometry, film_conductance
from repro.physics.thermal import ThermalNetwork, ThermalNode
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.membrane import Membrane

T_FLUID = 288.15
V = 1.0
SUPPLY = 2.0


def equivalent_network(sensor, g_film):
    """Build the heater-A + membrane-rim network the MAF integrates."""
    cfg = sensor.config
    membrane = cfg.membrane
    net = ThermalNetwork()
    net.add_node(ThermalNode(
        "heater", membrane.heater_region_capacity_j_per_k / 2.0, T_FLUID))
    net.add_node(ThermalNode(
        "rim", membrane.rim_region_capacity_j_per_k, T_FLUID))
    g_lat = membrane.lateral_conductance_w_per_k / 2.0
    net.couple("heater", "rim", g_lat)
    net.couple_ambient("heater", "water", g_film)
    net.couple_ambient("heater", "frame",
                       membrane.backside_conductance_w_per_k / 2.0)
    # The rim also loses to the frame through the full lateral path and
    # couples to the *other* heater; with symmetric drive the other
    # heater mirrors this one, so model it as an equal heat input.
    net.couple_ambient("rim", "frame", membrane.lateral_conductance_w_per_k)
    net.set_ambient("water", T_FLUID)
    net.set_ambient("frame", T_FLUID)
    return net, g_lat


def test_equilibrium_temperatures_agree():
    sensor = MAFSensor(MAFConfig(seed=8, enable_bubbles=False,
                                 enable_fouling=False))
    cond = FlowConditions(speed_mps=V, temperature_k=T_FLUID)
    # Drive the full sensor to equilibrium at fixed supply.
    readout = None
    for _ in range(4000):
        readout = sensor.step(1e-3, SUPPLY, SUPPLY, cond)
    t_heater_sensor = readout.heater_a_temperature_k

    # The equivalent network, with the film conductance evaluated at the
    # sensor's own equilibrium wall temperature and the same power.
    g_film = float(film_conductance(V, sensor.config.geometry,
                                    t_heater_sensor, T_FLUID))
    net, g_lat = equivalent_network(sensor, g_film)
    p = readout.heater_a_power_w
    # The rim receives the mirrored second heater's leak: inject it as
    # a source equal to this heater's lateral outflow.
    mirrored_leak_w = g_lat * max(t_heater_sensor - T_FLUID, 0.0)
    t_eq = net.steady_state(powers={"heater": p, "rim": mirrored_leak_w})
    assert t_eq["heater"] == pytest.approx(t_heater_sensor, abs=0.15)


def test_transient_time_constant_agrees():
    """Step the power on in both models: 63 % times within 20 %."""
    sensor = MAFSensor(MAFConfig(seed=9, enable_bubbles=False,
                                 enable_fouling=False))
    cond = FlowConditions(speed_mps=V, temperature_k=T_FLUID)
    dt = 2e-6
    # Sensor path: fixed supply from cold.
    temps_sensor = []
    for _ in range(40_000):
        r = sensor.step(dt, SUPPLY, SUPPLY, cond)
        temps_sensor.append(r.heater_a_temperature_k)
    temps_sensor = np.array(temps_sensor)
    final_s = temps_sensor[-1]
    rise_s = T_FLUID + 0.632 * (final_s - T_FLUID)
    tau_sensor = float(np.argmax(temps_sensor >= rise_s)) * dt

    # Network path with matched conductance and constant power.
    g_film = float(film_conductance(V, sensor.config.geometry,
                                    final_s, T_FLUID))
    net, g_lat = equivalent_network(sensor, g_film)
    # The nominal bridge power at this fixed drive (Rh ~ 50 Ω in 100 Ω).
    p = SUPPLY**2 * 50.0 / (100.0**2)
    temps_net = []
    for _ in range(40_000):
        t = net.step(dt, powers={"heater": p})
        temps_net.append(t["heater"])
    temps_net = np.array(temps_net)
    final_n = temps_net[-1]
    rise_n = T_FLUID + 0.632 * (final_n - T_FLUID)
    tau_net = float(np.argmax(temps_net >= rise_n)) * dt

    assert tau_sensor == pytest.approx(tau_net, rel=0.25)
    assert 1e-5 < tau_sensor < 5e-4  # both in the sub-ms regime