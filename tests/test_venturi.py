"""Unit tests for the venturi dP meter model."""

import numpy as np
import pytest

from repro.baselines.venturi import VenturiMeter
from repro.errors import ConfigurationError


def readings(meter, v, n=5000, dt=1e-3):
    return np.array([meter.read(v, dt) for _ in range(n)])


def test_validation():
    with pytest.raises(ConfigurationError):
        VenturiMeter(beta=0.9)
    with pytest.raises(ConfigurationError):
        VenturiMeter(discharge_coefficient=0.5)
    with pytest.raises(ConfigurationError):
        VenturiMeter().read(1.0, 0.0)


def test_accurate_at_high_flow():
    m = VenturiMeter(seed=1)
    assert float(np.mean(readings(m, 2.0))) == pytest.approx(2.0, rel=0.01)


def test_square_law_turndown_kills_low_flow():
    """dp ~ v^2: at 5 cm/s the dp is microscopic against the transducer
    noise floor — the intrusive meter cannot see the paper's low range."""
    m = VenturiMeter(seed=2)
    low = readings(m, 0.05)
    high = readings(m, 2.0)
    # Relative noise explodes at low flow (reading ~ rectified noise)...
    assert np.std(low) / np.mean(low) > 0.3
    # ...while the same instrument is clean at high flow.
    assert np.std(high) / np.mean(high) < 0.02


def test_resolution_improves_with_flow():
    """Square-law gain: absolute noise shrinks as v grows (opposite of
    the hot wire, whose worst point is high flow)."""
    m1, m2 = VenturiMeter(seed=3), VenturiMeter(seed=3)
    assert np.std(readings(m2, 2.0)) < np.std(readings(m1, 0.3))


def test_cannot_sign_flow():
    m = VenturiMeter(seed=4)
    assert float(np.mean(readings(m, -1.5))) > 1.0  # magnitude only


def test_dp_clips_at_transducer_span():
    m = VenturiMeter(dp_full_scale_pa=5000.0, seed=5)
    v_big = float(np.mean(readings(m, 3.0, n=200)))
    v_huge = float(np.mean(readings(m, 6.0, n=200)))
    assert v_huge == pytest.approx(v_big, rel=0.01)  # saturated


def test_permanent_pressure_loss_positive_and_quadratic():
    m = VenturiMeter()
    loss1 = m.permanent_pressure_loss_pa(1.0)
    loss2 = m.permanent_pressure_loss_pa(2.0)
    assert loss1 > 0.0
    assert loss2 == pytest.approx(4.0 * loss1, rel=1e-9)


def test_traits_intrusive():
    t = VenturiMeter().traits
    assert t.intrusive
    assert not t.has_moving_parts
