"""Tests for the unified run API across Session, TestRig and fleet.

One surface: ``run(profile, *, snapshot_s=..., collect=...)`` everywhere,
with deprecation shims keeping the old positional/keyword spellings
alive for one release.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import RunResult, Session
from repro.runtime.session import resolve_record_every_n
from repro.station.demand import DiurnalDemand
from repro.station.fleet import MonitoredNetwork
from repro.station.network import PipeNetwork
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor


def test_resolve_record_every_n():
    assert resolve_record_every_n(1e-3, None, None) == 20
    assert resolve_record_every_n(1e-3, 0.05, None) == 50
    assert resolve_record_every_n(1e-3, None, 7) == 7
    assert resolve_record_every_n(1e-3, 1e-4, None) == 1  # floor at 1
    with pytest.raises(ConfigurationError):
        resolve_record_every_n(1e-3, 0.05, 7)  # both given: ambiguous
    with pytest.raises(ConfigurationError):
        resolve_record_every_n(1e-3, -1.0, None)


@pytest.fixture(scope="module")
def session():
    with Session(n_monitors=1, seed=21, fast_calibration=True) as s:
        s.calibrate()
        yield s


def test_session_run_snapshot_s_equals_record_every_n(session):
    a = session.run(hold(60.0, 1.0), snapshot_s=0.05)
    b = session.run(hold(60.0, 1.0), record_every_n=50)
    assert np.array_equal(a.time_s, b.time_s)
    assert np.array_equal(a.measured_mps, b.measured_mps)


def test_session_run_positional_args_warn_but_work(session):
    with pytest.warns(FutureWarning):
        old = session.run(hold(60.0, 0.5), "scalar", 25)
    new = session.run(hold(60.0, 0.5), engine="scalar", record_every_n=25)
    assert np.array_equal(old.measured_mps, new.measured_mps)
    with pytest.raises(ConfigurationError), warnings.catch_warnings():
        warnings.simplefilter("ignore", FutureWarning)
        session.run(hold(60.0, 0.5), "scalar", 25, "extra")


def test_session_run_collect_summary(session):
    summary = session.run(hold(60.0, 0.5), collect="summary")
    result = session.run(hold(60.0, 0.5), collect="result")
    assert isinstance(result, RunResult)
    assert summary["run.true_speed_mps"]["mean"] == pytest.approx(
        result.summary()["run.true_speed_mps"]["mean"], rel=1e-6)
    assert np.isfinite(summary["run.measured_mps"]["mean"])
    with pytest.raises(ConfigurationError):
        session.run(hold(60.0, 0.5), collect="everything")


def test_session_run_refuses_both_cadence_spellings(session):
    with pytest.raises(ConfigurationError):
        session.run(hold(60.0, 0.5), snapshot_s=0.05, record_every_n=50)


def test_rig_run_unified_signature():
    setup = build_calibrated_monitor(seed=22, fast=True)
    rig = setup.rig
    rec = rig.run(hold(50.0, 0.5), snapshot_s=0.02)
    assert len(rec) == 25
    summary = rig.run(hold(50.0, 0.5), collect="summary")
    assert "measured_mps" in summary
    with pytest.warns(FutureWarning):
        rig.run(hold(50.0, 0.2), 10)
    with pytest.raises(ConfigurationError):
        rig.run(hold(50.0, 0.2), snapshot_s=0.02, record_every_n=10)
    with pytest.raises(ConfigurationError):
        rig.run(hold(50.0, 0.2), collect="nope")


def build_fleet(seed=0):
    net = PipeNetwork()
    net.add_pipe("reservoir", "A")
    net.add_pipe("A", "B", demand_m3_s=0.8e-3)
    fleet = MonitoredNetwork(net, seed=seed)
    fleet.attach_demand("B", DiurnalDemand(0.8e-3, seed=seed + 1))
    fleet.commission(hours=1.0, snapshot_s=300.0)
    return fleet


def test_fleet_run_unified_signature():
    fleet = build_fleet(seed=11)
    report = fleet.run(2.0, snapshot_s=120.0)
    assert report.snapshots == 60
    # a Profile's duration also sets the span
    report_p = fleet.run(hold(50.0, 3600.0))
    assert report_p.snapshots == 60
    summary = fleet.run(1.0, collect="summary")
    assert summary["snapshots"] == 60
    assert summary["leak_events"] == []


def test_fleet_run_deprecation_shims():
    fleet = build_fleet(seed=12)
    with pytest.warns(FutureWarning):
        by_kw = fleet.run(hours=1.0)
    with pytest.warns(FutureWarning):
        by_pos = fleet.run(1.0, 60.0)
    assert by_kw.snapshots == by_pos.snapshots == 60
    with pytest.raises(ConfigurationError), warnings.catch_warnings():
        warnings.simplefilter("ignore", FutureWarning)
        fleet.run(1.0, hours=1.0)  # duration twice
    with pytest.raises(ConfigurationError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FutureWarning)
            fleet.run(1.0, 60.0, snapshot_s=30.0)  # cadence twice
    with pytest.raises(ConfigurationError):
        fleet.run()  # no duration at all
    with pytest.raises(ConfigurationError):
        fleet.run(1.0, collect="nope")


def _sole_warning(record):
    """The single warning captured by a ``pytest.warns`` block."""
    assert len(record) == 1, (
        f"expected exactly one warning, got "
        f"{[str(w.message) for w in record]}")
    return str(record[0].message)


def test_every_deprecated_surface_warns_once_with_replacement():
    """Each legacy spelling warns exactly once and names its successor.

    The PR-2 shims are now :class:`FutureWarning` with a stated removal
    version (2.0): Session.run positional args, TestRig.run positional
    record_every_n, MonitoredNetwork.run positional snapshot_s and
    ``hours=``, and the bare SummaryDict key aliases.
    """
    with Session(n_monitors=1, seed=24, fast_calibration=True) as s:
        s.calibrate()
        with pytest.warns(FutureWarning) as rec:
            s.run(hold(60.0, 0.2), "scalar", 25)
        message = _sole_warning(rec)
        assert "2.0" in message and "keyword" in message
        result = s.run(hold(60.0, 0.2))
    setup = build_calibrated_monitor(seed=24, fast=True)
    with pytest.warns(FutureWarning) as rec:
        setup.rig.run(hold(50.0, 0.2), 10)
    message = _sole_warning(rec)
    assert "2.0" in message and "record_every_n=" in message
    fleet = build_fleet(seed=13)
    with pytest.warns(FutureWarning) as rec:
        fleet.run(1.0, 60.0)
    message = _sole_warning(rec)
    assert "2.0" in message and "snapshot_s=" in message
    with pytest.warns(FutureWarning) as rec:
        fleet.run(hours=1.0)
    message = _sole_warning(rec)
    assert "2.0" in message and "first" in message
    summary = result.summary()
    with pytest.warns(FutureWarning) as rec:
        summary["measured_mps"]
    message = _sole_warning(rec)
    assert "2.0" in message and "run.measured_mps" in message


def test_run_result_summary_metric_keys():
    with Session(n_monitors=1, seed=23, fast_calibration=True) as s:
        s.calibrate()
        result = s.run(hold(60.0, 0.5))
    summary = result.summary()
    assert set(summary) == {
        "run.time_s", "run.true_speed_mps", "run.reference_mps",
        "run.measured_mps", "run.direction", "run.pressure_pa",
        "run.temperature_k", "run.bubble_coverage",
    }
    # legacy keys resolve through the deprecation alias
    with pytest.warns(FutureWarning):
        legacy = summary["measured_mps"]
    assert legacy is summary["run.measured_mps"]
    assert "measured_mps" in summary
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FutureWarning)
        assert summary.get("measured_mps", None) is not None
    assert summary.get("not_a_field") is None
    with pytest.raises(KeyError):
        summary["not_a_field"]
    per_monitor = result.summary(monitor=0)
    assert "run.measured_mps" in per_monitor
