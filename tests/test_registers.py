"""Unit tests for the register file / APB model."""

import pytest

from repro.errors import RegisterError
from repro.isif.registers import Field, Register, RegisterFile


def make_reg():
    return Register("CTRL", 0x00, reset=0x5, fields=(
        Field("EN", 0, 1),
        Field("MODE", 1, 2),
        Field("GAIN", 4, 3),
    ))


def test_field_validation():
    with pytest.raises(RegisterError):
        Field("bad", 33, 1)
    with pytest.raises(RegisterError):
        Field("bad", 30, 4)  # spills past bit 31


def test_register_validation():
    with pytest.raises(RegisterError):
        Register("bad", 0x3)  # unaligned
    with pytest.raises(RegisterError):
        Register("bad", 0x0, reset=2**33)
    with pytest.raises(RegisterError):
        Register("bad", 0x0, fields=(Field("A", 0, 2), Field("B", 1, 2)))  # overlap
    with pytest.raises(RegisterError):
        Register("bad", 0x0, fields=(Field("A", 0, 1), Field("A", 1, 1)))  # dup name


def test_reset_value():
    r = make_reg()
    assert r.read() == 0x5
    assert r.read_field("EN") == 1
    assert r.read_field("MODE") == 0b10


def test_field_read_modify_write():
    r = make_reg()
    r.write_field("GAIN", 5)
    assert r.read_field("GAIN") == 5
    assert r.read_field("EN") == 1  # untouched
    assert r.read() == 0x5 | (5 << 4)


def test_field_overflow_rejected():
    r = make_reg()
    with pytest.raises(RegisterError):
        r.write_field("MODE", 4)


def test_unknown_field_rejected():
    with pytest.raises(RegisterError):
        make_reg().read_field("NOPE")


def test_word_write_bounds():
    r = make_reg()
    r.write(0xFFFF_FFFF)
    assert r.read() == 0xFFFF_FFFF
    with pytest.raises(RegisterError):
        r.write(-1)


def test_register_file_addressing():
    rf = RegisterFile("blk")
    rf.add(make_reg())
    rf.add(Register("STAT", 0x04))
    assert rf.read(0x00) == 0x5
    rf.write(0x04, 0xAB)
    assert rf.reg("STAT").read() == 0xAB
    assert len(rf) == 2
    assert "CTRL" in rf


def test_register_file_duplicates_rejected():
    rf = RegisterFile("blk")
    rf.add(make_reg())
    with pytest.raises(RegisterError):
        rf.add(Register("OTHER", 0x00))
    with pytest.raises(RegisterError):
        rf.add(Register("CTRL", 0x08))


def test_register_file_bad_access():
    rf = RegisterFile("blk")
    with pytest.raises(RegisterError):
        rf.read(0x40)
    with pytest.raises(RegisterError):
        rf.reg("GHOST")


def test_reset_all_and_dump():
    rf = RegisterFile("blk")
    rf.add(make_reg())
    rf.write(0x00, 0xFF)
    rf.reset_all()
    assert rf.dump() == {"CTRL": 0x5}
