"""Unit and property tests for the King's-law model and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError, ConfigurationError
from repro.physics.kings_law import KingsLaw, fit_kings_law

LAW = KingsLaw(coeff_a=1.2e-3, coeff_b=4.5e-3, exponent=0.5)


def test_validation():
    with pytest.raises(ConfigurationError):
        KingsLaw(coeff_a=-1.0, coeff_b=1.0)
    with pytest.raises(ConfigurationError):
        KingsLaw(coeff_a=1.0, coeff_b=1.0, exponent=2.0)


def test_power_at_zero_flow_is_conduction_only():
    assert float(LAW.power(0.0, 10.0)) == pytest.approx(10.0 * LAW.coeff_a)


def test_power_even_in_speed():
    assert float(LAW.power(1.5, 8.0)) == pytest.approx(float(LAW.power(-1.5, 8.0)))


def test_power_scales_with_overtemperature():
    assert float(LAW.power(1.0, 10.0)) == pytest.approx(2.0 * float(LAW.power(1.0, 5.0)))


def test_negative_overtemperature_rejected():
    with pytest.raises(ConfigurationError):
        LAW.power(1.0, -1.0)


def test_invert_power_roundtrip():
    for v in [0.0, 0.01, 0.3, 1.0, 2.5]:
        p = float(LAW.power(v, 10.0))
        assert float(LAW.invert_power(p, 10.0)) == pytest.approx(v, abs=1e-12)


def test_invert_clips_below_zero_flow():
    p_zero = float(LAW.power(0.0, 10.0))
    assert float(LAW.invert_power(p_zero * 0.5, 10.0)) == 0.0


def test_invert_requires_positive_overtemperature():
    with pytest.raises(ConfigurationError):
        LAW.invert_power(0.01, 0.0)


def test_sensitivity_falls_with_speed():
    s_low = float(LAW.sensitivity(0.1, 10.0))
    s_high = float(LAW.sensitivity(2.5, 10.0))
    assert s_low > s_high  # King-law compression: worst resolution at high flow


def test_sensitivity_is_derivative():
    v, dv = 1.0, 1e-6
    numeric = (float(LAW.power(v + dv, 10.0)) - float(LAW.power(v, 10.0))) / dv
    assert float(LAW.sensitivity(v, 10.0)) == pytest.approx(numeric, rel=1e-4)


def test_gain_drift_copy():
    drifted = LAW.with_gain_drift(-0.10)
    assert drifted.coeff_b == pytest.approx(LAW.coeff_b * 0.9)
    assert drifted.coeff_a == LAW.coeff_a


def test_fit_recovers_exact_coefficients():
    v = np.array([0.0, 0.1, 0.3, 0.6, 1.0, 1.8, 2.5])
    g = LAW.conductance(v)
    fitted = fit_kings_law(v, g, exponent=0.5)
    assert fitted.coeff_a == pytest.approx(LAW.coeff_a, rel=1e-9)
    assert fitted.coeff_b == pytest.approx(LAW.coeff_b, rel=1e-9)


def test_fit_scans_exponent():
    true = KingsLaw(coeff_a=1e-3, coeff_b=5e-3, exponent=0.45)
    v = np.linspace(0.05, 2.5, 20)
    fitted = fit_kings_law(v, true.conductance(v))
    assert fitted.exponent == pytest.approx(0.45, abs=0.011)


def test_fit_rejects_too_few_points():
    with pytest.raises(CalibrationError):
        fit_kings_law(np.array([0.0, 1.0]), np.array([1e-3, 2e-3]))


def test_fit_rejects_degenerate_speeds():
    with pytest.raises(CalibrationError):
        fit_kings_law(np.ones(5), np.linspace(1e-3, 2e-3, 5))


def test_fit_rejects_nonphysical_data():
    # Conductance *decreasing* with speed cannot fit a positive B.
    v = np.linspace(0.1, 2.0, 8)
    g = 5e-3 - 1e-3 * np.sqrt(v)
    with pytest.raises(CalibrationError):
        fit_kings_law(v, g, exponent=0.5)


@settings(max_examples=30)
@given(
    st.floats(min_value=1e-4, max_value=1e-2),
    st.floats(min_value=1e-3, max_value=1e-2),
    st.floats(min_value=0.35, max_value=0.65),
)
def test_fit_roundtrip_property(a, b, n):
    law = KingsLaw(a, b, n)
    v = np.linspace(0.02, 2.5, 15)
    fitted = fit_kings_law(v, law.conductance(v), exponent=n)
    assert fitted.coeff_a == pytest.approx(a, rel=1e-6)
    assert fitted.coeff_b == pytest.approx(b, rel=1e-6)


@given(st.floats(min_value=0.0, max_value=2.5),
       st.floats(min_value=0.0, max_value=2.5))
def test_conductance_monotone_property(v1, v2):
    lo, hi = sorted([v1, v2])
    assert float(LAW.conductance(hi)) >= float(LAW.conductance(lo))
