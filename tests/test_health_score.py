"""Fleet health-scoring tests: tracker units, CUSUM block form, ROC/AUC.

The acceptance claim for the live plane's scoring layer: on a labeled
scenario campaign (clean rigs vs injected tank/slab leaks) the fused
score achieves measurable separation, reported as ROC/AUC from the
Mann-Whitney harness in :func:`repro.station.health.evaluate_scores`.
"""

import numpy as np
import pytest

from repro.conditioning.leak_detect import CusumDetector
from repro.errors import ConfigurationError
from repro.runtime import FleetSpec, RigSpec
from repro.station import (RigHealthTracker, evaluate_scores,
                           fleet_reference, run_campaign, score_fleet)

pytestmark = pytest.mark.live


# -- the CUSUM block form -----------------------------------------------------


def test_update_block_matches_iterative_updates():
    """The closed-form block CUSUM equals the per-sample recursion.

    Equality is up to float rounding only: the block form sums with a
    different association order (cumsum vs a running scalar).
    """
    rng = np.random.default_rng(3)
    residuals = rng.normal(0.002, 0.01, size=257)
    iterative = CusumDetector(drift=0.005, threshold=0.5)
    block = CusumDetector(drift=0.005, threshold=0.5)
    peak_iter = 0.0
    for value in residuals:
        iterative.update(float(value))
        peak_iter = max(peak_iter, iterative.statistic)
    peak_block = block.update_block(residuals)
    assert block.statistic == pytest.approx(iterative.statistic, abs=1e-12)
    assert peak_block == pytest.approx(peak_iter, abs=1e-12)


def test_update_block_chunking_invariance_and_empty_block():
    rng = np.random.default_rng(11)
    residuals = rng.normal(0.0, 0.02, size=300)
    whole = CusumDetector(drift=0.01, threshold=1.0)
    chunked = CusumDetector(drift=0.01, threshold=1.0)
    peak_whole = whole.update_block(residuals)
    peak_chunked = max(chunked.update_block(chunk)
                       for chunk in np.array_split(residuals, 7))
    assert chunked.statistic == pytest.approx(whole.statistic, abs=1e-12)
    assert peak_chunked == pytest.approx(peak_whole, abs=1e-12)
    # An empty block is a no-op reporting the current statistic.
    before = whole.statistic
    assert whole.update_block(np.array([])) == before
    assert whole.statistic == before


# -- the tracker in isolation -------------------------------------------------


def test_tracker_clean_stream_stays_healthy():
    tracker = RigHealthTracker(baseline_s=0.5)
    rng = np.random.default_rng(5)
    reference = 0.5 + 0.05 * rng.standard_normal(400)
    measured = reference + 0.002 * rng.standard_normal(400)
    for lo in range(0, 400, 50):
        tracker.update(dt_s=0.01, measured_mps=measured[lo:lo + 50],
                       reference_mps=reference[lo:lo + 50])
    assert tracker.score() < 0.3
    assert tracker.status().name == "HEALTHY"
    assert tracker.elapsed_s == pytest.approx(4.0)
    assert tracker.windows == 8


def test_tracker_persistent_excess_draw_faults():
    """A leak-scale persistent draw saturates leak+draw; noisy-OR fuses."""
    tracker = RigHealthTracker(baseline_s=0.5)
    reference = np.full(100, 0.5)
    # clean warmup, then a persistent +0.04 m/s unexplained draw
    for _ in range(2):
        tracker.update(dt_s=0.01, measured_mps=reference,
                       reference_mps=reference)
    for _ in range(10):
        tracker.update(dt_s=0.01, measured_mps=reference + 0.04,
                       reference_mps=reference)
    components = tracker.components()
    assert components["leak"] == pytest.approx(1.0)
    assert components["draw"] == pytest.approx(1.0)
    assert tracker.score() == pytest.approx(1.0)
    assert tracker.status().name == "FAULT"
    report = tracker.report()
    assert report["status"] == "fault"
    assert set(report["components"]) == \
        {"leak", "draw", "pressure", "thermal", "loop"}


def test_tracker_gain_baseline_forgives_a_biased_but_clean_meter():
    """A 5% gain error vs the reference scores ~0 after baseline learning."""
    tracker = RigHealthTracker(baseline_s=0.5)
    rng = np.random.default_rng(7)
    # demand moves substantially after the warmup window
    reference = np.concatenate([np.full(200, 0.2), np.full(400, 0.8)])
    measured = 1.05 * reference + 0.001 * rng.standard_normal(600)
    for lo in range(0, 600, 50):
        tracker.update(dt_s=0.01, measured_mps=measured[lo:lo + 50],
                       reference_mps=reference[lo:lo + 50])
    assert tracker.score() < 0.2
    assert tracker.status().name == "HEALTHY"


def test_tracker_pressure_thermal_and_loop_components():
    tracker = RigHealthTracker(baseline_s=0.1)
    ref = np.full(50, 0.5)
    press_ref = np.full(50, 3.0e5)
    temp_ref = np.full(50, 288.0)
    # one clean window establishes the baselines (and freezes them)...
    tracker.update(dt_s=0.01, measured_mps=ref, reference_mps=ref,
                   pressure_pa=press_ref, reference_pa=press_ref,
                   temperature_k=temp_ref, reference_k=temp_ref,
                   bubble_coverage=np.zeros(50))
    # ... then a persistent sag, a freeze-scale anomaly and bubbles.
    for _ in range(5):
        tracker.update(dt_s=0.01, measured_mps=ref, reference_mps=ref,
                       pressure_pa=press_ref - 4.0e3,
                       reference_pa=press_ref,
                       temperature_k=temp_ref - 4.0,
                       reference_k=temp_ref,
                       bubble_coverage=np.full(50, 0.12))
    components = tracker.components()
    # mean post-baseline sag 4 kPa on the 5 kPa scale
    assert components["pressure"] == pytest.approx(0.8)
    # 4 K anomaly less the 1 K deadband over 5 of 6 windows, 4 K scale
    assert components["thermal"] == pytest.approx(3.0 * 5 / 6 / 4.0)
    assert components["loop"] == pytest.approx(0.8)  # 0.12 / (3 x 0.05)
    assert components["leak"] == 0.0 and components["draw"] == 0.0


def test_tracker_validation():
    with pytest.raises(ConfigurationError):
        RigHealthTracker(leak_sensitivity_mps=0.0)
    with pytest.raises(ConfigurationError):
        RigHealthTracker(degraded_at=0.9, fault_at=0.8)
    tracker = RigHealthTracker()
    with pytest.raises(ConfigurationError):
        tracker.update(dt_s=0.0, measured_mps=np.ones(3),
                       reference_mps=np.ones(3))
    with pytest.raises(ConfigurationError):
        tracker.update(dt_s=0.01, measured_mps=np.ones(3),
                       reference_mps=np.ones(4))
    # the empty window is a no-op
    assert tracker.update(dt_s=0.01, measured_mps=np.array([]),
                          reference_mps=np.array([])) == 0.0
    assert tracker.windows == 0


# -- fleet reference ----------------------------------------------------------


def test_fleet_reference_median_for_three_plus_mean_for_tiny():
    class Stub:
        measured_mps = np.array([[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]])
        time_s = np.array([0.0, 1.0])
    assert np.array_equal(fleet_reference(Stub(), "measured_mps"),
                          [2.0, 2.0])  # median shrugs off the outlier
    class Two:
        measured_mps = np.array([[1.0], [3.0]])
    assert np.array_equal(fleet_reference(Two(), "measured_mps"), [2.0])
    class Flat:
        measured_mps = np.ones(5)
    with pytest.raises(ConfigurationError):
        fleet_reference(Flat(), "measured_mps")


# -- the ROC/AUC harness ------------------------------------------------------


def test_evaluate_scores_analytic_cases():
    perfect = evaluate_scores([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
    assert perfect["auc"] == 1.0
    assert perfect["roc"][0] == (0.0, 0.0) and perfect["roc"][-1] == (1.0, 1.0)
    random = evaluate_scores([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5])
    assert random["auc"] == 0.5  # midranks: all tied
    inverted = evaluate_scores([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9])
    assert inverted["auc"] == 0.0
    # pairwise: pos 0.4 beats neg 0.1, ties neg 0.4; both 0.7/0.9 beat both
    mixed = evaluate_scores([0, 1, 0, 1, 1], [0.1, 0.4, 0.4, 0.7, 0.9])
    assert mixed["auc"] == pytest.approx(5.5 / 6.0)
    assert mixed["n_pos"] == 3 and mixed["n_neg"] == 2
    with pytest.raises(ConfigurationError):
        evaluate_scores([0, 0], [0.1, 0.2])  # no positives
    with pytest.raises(ConfigurationError):
        evaluate_scores([0, 1], [0.1])  # length mismatch


# -- the labeled campaign (the acceptance bar) --------------------------------


@pytest.mark.scenario
def test_labeled_campaign_separates_leaks_from_clean_rigs(capsys):
    """Injected-leak rigs separate from clean rigs: AUC reported and pinned.

    7 clean household rigs vs 2 tank-leak + 1 slab-leak rigs over a
    compressed diurnal day.  Deterministic (fixed seeds), so the AUC
    assertion is a regression pin, not a statistical gamble.
    """
    seed = 7
    fleet = FleetSpec(rigs=[
        RigSpec(count=7, seed=seed, scenario="baseline",
                fast_calibration=True),
        RigSpec(count=2, seed=seed + 100, scenario="tank_leak",
                fast_calibration=True),
        RigSpec(count=1, seed=seed + 200, scenario="slab_leak",
                fast_calibration=True),
    ], seed=seed)
    labels = [0] * 7 + [1] * 3
    report = run_campaign(fleet, duration_s=6.0)
    rows = score_fleet(report.result, labels=labels)
    assert [row["rig"] for row in rows] == list(range(10))
    assert [row["label"] for row in rows] == labels
    scores = [row["score"] for row in rows]
    ev = evaluate_scores(labels, scores)

    # The ISSUE asks for the ROC/AUC to be *reported* by the tests.
    print(f"\nhealth-score ROC (seed {seed}, 6 s campaign):")
    for fpr, tpr in ev["roc"]:
        print(f"  fpr={fpr:.3f} tpr={tpr:.3f}")
    print(f"AUC = {ev['auc']:.4f}  "
          f"({ev['n_pos']} faulted vs {ev['n_neg']} clean rigs)")
    out = capsys.readouterr().out
    assert "AUC" in out

    assert ev["auc"] >= 0.9
    # Every leak rig outscores the clean median by a wide margin.
    clean = sorted(s for s, l in zip(scores, labels) if not l)
    faulty = [s for s, l in zip(scores, labels) if l]
    assert min(faulty) > np.median(clean)
    assert max(faulty) > 0.8  # at least one rig is an outright FAULT


def test_score_fleet_validates_inputs():
    class Thin:
        time_s = np.array([0.0])
    with pytest.raises(ConfigurationError):
        score_fleet(Thin())
