"""Tests for the relay PI auto-tuner."""

import numpy as np
import pytest

from repro.conditioning.autotune import RelayAutotuner
from repro.conditioning.cta import CTAConfig, CTAController
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

COND = FlowConditions(speed_mps=1.0)


def fresh(seed=51):
    return (MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                enable_fouling=False)),
            ISIFPlatform.for_anemometer(seed=seed))


def test_validation():
    s, p = fresh()
    with pytest.raises(ConfigurationError):
        RelayAutotuner(s, p, relay_amplitude_v=-1.0)
    with pytest.raises(ConfigurationError):
        RelayAutotuner(s, p, center_supply_v=4.9, relay_amplitude_v=0.5)
    with pytest.raises(ConfigurationError):
        RelayAutotuner(s, p).run(COND, measure_cycles=1)


def test_limit_cycle_found_and_plausible():
    s, p = fresh()
    result = RelayAutotuner(s, p).run(COND)
    assert result.cycles_used >= 4
    # The loop's lag is set by the 50 Hz channel LPF: P_u of a few ms.
    assert 1e-3 < result.ultimate_period_s < 50e-3
    assert result.ultimate_gain > 10.0
    assert result.kp == pytest.approx(0.4 * result.ultimate_gain)
    assert result.ki == pytest.approx(1.2 * result.ultimate_gain
                                      / result.ultimate_period_s)


def test_tuned_loop_is_stable_and_accurate():
    s, p = fresh(seed=52)
    result = RelayAutotuner(s, p).run(COND)
    s2, p2 = fresh(seed=52)
    controller = CTAController(s2, p2, result.to_cta_config())
    tel = controller.settle(COND, 0.5)
    d_t = tel.readout.heater_a_temperature_k - COND.temperature_k
    assert d_t == pytest.approx(5.0, abs=0.6)
    # Still stable: error stays bounded over a longer run.
    errors = [abs(controller.step(COND).error_a_v) for _ in range(500)]
    assert np.max(errors) < 5e-3


def test_tuned_loop_no_worse_than_default():
    """The flow-step error transient is channel-LPF-limited (the plant
    pole is microseconds, the measurement pole milliseconds), so the
    tuner cannot beat physics — but its much hotter gains must not
    degrade the transient either, and they must come out *above* the
    conservative hand defaults (showing the margin E14 leaves unused)."""
    def transient_error(cfg, seed=53):
        s, p = fresh(seed=seed)
        controller = CTAController(s, p, cfg)
        controller.settle(FlowConditions(speed_mps=0.3), 0.5)
        errs = []
        for _ in range(60):
            tel = controller.step(FlowConditions(speed_mps=2.0))
            errs.append(abs(tel.error_a_v))
        return float(np.sum(errs))

    s, p = fresh(seed=53)
    tuned_cfg = RelayAutotuner(s, p).run(COND).to_cta_config()
    default = CTAConfig()
    assert tuned_cfg.kp > default.kp
    assert tuned_cfg.ki > default.ki
    assert transient_error(tuned_cfg) <= 1.05 * transient_error(default)


def test_deterministic_per_seed():
    s1, p1 = fresh(seed=54)
    s2, p2 = fresh(seed=54)
    r1 = RelayAutotuner(s1, p1).run(COND)
    r2 = RelayAutotuner(s2, p2).run(COND)
    assert r1.ultimate_gain == r2.ultimate_gain
    assert r1.ultimate_period_s == r2.ultimate_period_s
