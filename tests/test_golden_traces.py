"""Golden-trace regression: the numerics must not drift — at all.

Each checked-in archive under ``tests/golden/`` was produced by
``tests/golden/regen.py`` at fixed seeds.  The tests re-run the same
case functions and compare byte for byte (dtype, shape and raw buffer),
which is strictly stronger than any numeric tolerance: a single ulp of
drift anywhere in the physics, the DSP chain, the RNG consumption order
or the merge logic fails the suite.

The one exception is the fast-numerics case (``TOLERANT_CASES``): its
transcendentals go through numpy's SIMD kernels, whose last-ulp
rounding is build-dependent, so it is held to the fast-mode contract —
1e-9 relative error on float traces, exact on integer traces — instead
of bytes.

The ``*_resume`` archives additionally pin the checkpoint contract:
each was produced by cutting its sibling case at step 737 (not a
recording boundary), round-tripping the live engine through
``save_checkpoint``/``load_checkpoint`` on disk and finishing from the
restored object — so ``test_resume_matches_uninterrupted_bytes``
asserting the pair byte-identical is the durability guarantee in
archive form.

If a change *intends* to alter the numerics, regenerate with::

    PYTHONPATH=src python -m tests.golden.regen

and commit the new archives together with the change that explains them.
"""

import numpy as np
import pytest

from tests.golden.regen import (CASES, GOLDEN_DIR, RESUME_PAIRS,
                                TOLERANT_CASES)


@pytest.mark.parametrize("stem", sorted(CASES))
def test_golden_archive_exists(stem):
    assert (GOLDEN_DIR / f"{stem}.npz").exists(), \
        f"missing golden archive {stem}.npz; run tests/golden/regen.py"


@pytest.mark.parametrize("stem", sorted(CASES))
def test_traces_match_golden_bytes(stem):
    live = CASES[stem]()
    with np.load(GOLDEN_DIR / f"{stem}.npz") as archive:
        assert sorted(archive.files) == sorted(live), stem
        for name in archive.files:
            stored = archive[name]
            fresh = np.ascontiguousarray(live[name])
            assert fresh.dtype == stored.dtype, f"{stem}/{name} dtype"
            assert fresh.shape == stored.shape, f"{stem}/{name} shape"
            if stem in TOLERANT_CASES:
                if np.issubdtype(stored.dtype, np.floating):
                    np.testing.assert_allclose(
                        fresh, stored, rtol=1e-9, atol=1e-12,
                        err_msg=f"{stem}/{name}: fast trace outside the "
                                f"1e-9 fast-mode contract")
                else:
                    assert np.array_equal(fresh, stored), \
                        f"{stem}/{name}: integer trace drifted"
            else:
                assert fresh.tobytes() == stored.tobytes(), \
                    f"{stem}/{name}: traces drifted from the golden bytes"


@pytest.mark.parametrize("resume_stem,base_stem", sorted(RESUME_PAIRS.items()))
def test_resume_matches_uninterrupted_bytes(resume_stem, base_stem):
    """A checkpointed-and-resumed run equals the uninterrupted one, in bytes.

    Compares the checked-in archives directly (both already pinned to
    their case functions above), so a parity break cannot hide behind a
    joint regeneration.
    """
    with np.load(GOLDEN_DIR / f"{resume_stem}.npz") as resumed, \
            np.load(GOLDEN_DIR / f"{base_stem}.npz") as base:
        assert sorted(resumed.files) == sorted(base.files)
        for name in base.files:
            assert resumed[name].dtype == base[name].dtype, name
            assert resumed[name].shape == base[name].shape, name
            assert resumed[name].tobytes() == base[name].tobytes(), \
                f"{resume_stem}/{name}: resume diverged from {base_stem}"
