"""Shared-memory backend parity: zero-copy must not change a single bit.

The acceptance bar for ``backend="shm"`` is the same as for the spawn
backend it sits beside: for any worker count, the merged traces must
equal the serial batch engine bitwise.  These tests assert that for
worker counts 1, 2, 3 and N, through every public surface
(`ShardedEngine`, `Session.run`, `run_batch`,
`characterize_meter_pool`), across `advance` windows, through a
mid-sequence pickle/unpickle (the checkpoint path), and with a worker
killed mid-run (per-shard serial fallback).
"""

import pickle

import numpy as np
import pytest

from repro.runtime import (BatchEngine, FleetSpec, RunResult, Session,
                           ShardedEngine, run_batch, shutdown_pool,
                           spawn_monitor_seeds)
from repro.runtime.parallel import FAULT_ENV
from repro.station.fleet import characterize_meter_pool
from repro.station.profiles import hold, staircase
from repro.station.scenarios import build_calibrated_monitor

pytestmark = pytest.mark.parallel

N_MONITORS = 4
SEED = 777
PROFILE = hold(60.0, 1.5)


def _fleet(n=N_MONITORS, seed=SEED):
    """Fresh rigs with the same seed derivation a Session would use."""
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(seed, n)]


def _assert_bit_identical(a, b):
    assert np.array_equal(np.asarray(a.time_s), np.asarray(b.time_s))
    for name in RunResult.STACKED_FIELDS:
        lhs = np.asarray(getattr(a, name))
        rhs = np.asarray(getattr(b, name))
        assert lhs.shape == rhs.shape, name
        assert np.array_equal(lhs, rhs), f"{name} differs bitwise"


@pytest.fixture(scope="module")
def serial_reference():
    """The serial batch-engine run every shm variant must reproduce."""
    return BatchEngine(_fleet()).run(PROFILE)


@pytest.fixture()
def fresh_pool():
    """A pool forked under the *current* environment.

    The pool is persistent and workers inherit the parent environment
    at fork time, so tests that flip env hooks (the fault injector)
    must tear the pool down before and after.
    """
    shutdown_pool()
    yield
    shutdown_pool()


@pytest.mark.parametrize("workers", [1, 2, 3, N_MONITORS])
def test_shm_matches_serial(serial_reference, workers):
    with ShardedEngine(_fleet(), workers=workers, backend="shm") as engine:
        assert engine.backend == "shm"
        _assert_bit_identical(engine.run(PROFILE), serial_reference)


def test_shm_windowed_advance_matches_one_shot(serial_reference):
    with ShardedEngine(_fleet(), workers=2, backend="shm") as engine:
        first = engine.advance(PROFILE, 700)
        second = engine.advance(PROFILE, 800)
    stitched = RunResult.concat([first, second], axis="time")
    _assert_bit_identical(stitched, serial_reference)


def test_shm_pickle_roundtrip_resumes_bit_identical(serial_reference):
    """The checkpoint path: dump pool-resident engines, reload, finish."""
    engine = ShardedEngine(_fleet(), workers=2, backend="shm")
    try:
        first = engine.advance(PROFILE, 700)
        blob = pickle.dumps(engine)
    finally:
        engine.close()
    restored = pickle.loads(blob)
    try:
        second = restored.advance(PROFILE, 800)
    finally:
        restored.close()
    stitched = RunResult.concat([first, second], axis="time")
    _assert_bit_identical(stitched, serial_reference)


def test_shm_survives_worker_crash(serial_reference, monkeypatch,
                                   fresh_pool):
    """A killed pool worker degrades that shard to in-process serial."""
    monkeypatch.setenv(FAULT_ENV, "crash:0")
    with ShardedEngine(_fleet(), workers=2, backend="shm") as engine:
        _assert_bit_identical(engine.run(PROFILE), serial_reference)


def test_shm_scheduler_accounting_matches_serial():
    serial_rigs, shm_rigs = _fleet(2), _fleet(2)
    BatchEngine(serial_rigs).run(PROFILE)
    with ShardedEngine(shm_rigs, workers=2, backend="shm") as engine:
        engine.run(PROFILE)
    for serial_rig, shm_rig in zip(serial_rigs, shm_rigs):
        assert (shm_rig.monitor.platform.scheduler.ticks
                == serial_rig.monitor.platform.scheduler.ticks)


def test_session_shm_backend_parity():
    profile = staircase([0.0, 80.0], dwell_s=1.0)
    with Session(n_monitors=3, seed=SEED, fast_calibration=True) as session:
        session.calibrate()
        serial = session.run(profile)
        shm = session.run(profile, workers=3, backend="shm")
    _assert_bit_identical(shm, serial)


def test_run_batch_shm_backend_parity(serial_reference):
    _assert_bit_identical(
        run_batch(_fleet(), PROFILE, workers=3, backend="shm"),
        serial_reference)


def test_characterize_meter_pool_shm_matches_spawn():
    spec = FleetSpec.homogeneous(3, seed=SEED, use_pulsed_drive=False,
                                 fast_calibration=True)
    spawn = characterize_meter_pool(spec, workers=3, backend="spawn")
    shm = characterize_meter_pool(spec, workers=3, backend="shm")
    assert shm == spawn


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_shm_matches_golden_archive_bytes(workers):
    """The golden archives gate the shm backend, byte for byte.

    Same case as ``sharded_engine.npz`` (itself byte-identical to the
    serial ``batch_engine.npz``), re-run on the shm pool — the archive
    is the parity contract, so it is compared raw-buffer to raw-buffer
    and never regenerated by this test.
    """
    from tests.golden.regen import (GOLDEN_DIR, _PROFILE, _RECORD_EVERY_N,
                                    _fleet_rigs)

    with ShardedEngine(_fleet_rigs(), workers=workers,
                       backend="shm") as engine:
        result = engine.run(_PROFILE, record_every_n=_RECORD_EVERY_N)
    with np.load(GOLDEN_DIR / "sharded_engine.npz") as archive:
        for name in ("time_s",) + RunResult.STACKED_FIELDS:
            stored = archive[name]
            fresh = np.ascontiguousarray(np.asarray(getattr(result, name)))
            assert fresh.dtype == stored.dtype, name
            assert fresh.shape == stored.shape, name
            assert fresh.tobytes() == stored.tobytes(), \
                f"{name}: shm traces drifted from the golden bytes"


def test_shm_result_views_are_read_only():
    with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
        result = engine.run(PROFILE)
    assert not np.asarray(result.time_s).flags.writeable
    for name in RunResult.STACKED_FIELDS:
        assert not np.asarray(getattr(result, name)).flags.writeable, name
    with pytest.raises(ValueError):
        np.asarray(result.measured_mps)[0, 0] = 0.0
