"""Unit tests for the UART and SPI peripheral models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.spi import LoopbackSlave, RegisterSlave, SpiMaster
from repro.isif.uart import Parity, UartLink, UartReceiver, UartTransmitter


# -- UART ---------------------------------------------------------------------

def test_uart_roundtrip_clean_line():
    for parity in Parity:
        link = UartLink(parity=parity)
        data, errors = link.transfer(b"ISIF anemometer \x00\xff")
        assert data == b"ISIF anemometer \x00\xff"
        assert errors == []


def test_uart_frame_structure():
    tx = UartTransmitter()
    bits = tx.serialise(b"\x55")
    # start(0) + 0x55 LSB-first (1,0,1,0,1,0,1,0) + stop(1)
    assert list(bits) == [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]


def test_uart_parity_bit_value():
    tx_even = UartTransmitter(Parity.EVEN)
    bits = tx_even.serialise(b"\x03")  # two ones -> even parity bit 0
    assert bits[9] == 0
    tx_odd = UartTransmitter(Parity.ODD)
    assert tx_odd.serialise(b"\x03")[9] == 1


def test_uart_parity_detects_single_bit_flip():
    tx = UartTransmitter(Parity.EVEN)
    rx = UartReceiver(Parity.EVEN)
    bits = tx.serialise(b"\xa7")
    bits[3] ^= 1  # flip a data bit
    data, errors = rx.deserialise(bits)
    assert errors == [0]


def test_uart_framing_error_detection():
    rx = UartReceiver()
    bits = UartTransmitter().serialise(b"\x42")
    bits[-1] = 0  # broken stop bit
    _, errors = rx.deserialise(bits)
    assert errors == [0]


def test_uart_misaligned_stream_rejected():
    rx = UartReceiver()
    with pytest.raises(ConfigurationError):
        rx.deserialise(np.array([0, 1, 1], dtype=np.uint8))


def test_uart_noisy_line_statistics():
    link = UartLink(parity=Parity.EVEN, bit_error_rate=0.01, seed=5)
    total_chars = 0
    flagged = 0
    for _ in range(50):
        payload = bytes(range(32))
        data, errors = link.transfer(payload)
        total_chars += len(payload)
        flagged += len(errors)
    # With 1 % BER and 11-bit frames, ~10 % of characters get hit; the
    # parity catches the (dominant) single-flip cases.
    assert 0.02 < flagged / total_chars < 0.25


def test_uart_invalid_ber():
    with pytest.raises(ConfigurationError):
        UartLink(bit_error_rate=0.7)


# -- SPI ----------------------------------------------------------------------

def test_spi_loopback():
    master = SpiMaster()
    miso, duration = master.transfer(LoopbackSlave(), b"\x01\x02\x03")
    assert miso == b"\x01\x02\x03"
    assert duration == pytest.approx(24 / 1e6)


def test_spi_mode_validation():
    with pytest.raises(ConfigurationError):
        SpiMaster(mode=4)
    with pytest.raises(ConfigurationError):
        SpiMaster(clock_hz=0.0)


def test_spi_register_slave_write_then_read():
    master = SpiMaster()
    slave = RegisterSlave()
    # Write 0xAA, 0xBB at address 4.
    master.transfer(slave, bytes([0x04, 0xAA, 0xBB]))
    assert slave.peek(4) == 0xAA
    assert slave.peek(5) == 0xBB
    # Read them back: address 4 with MSB set, two dummy clock bytes.
    miso, _ = master.transfer(slave, bytes([0x84, 0x00, 0x00]))
    assert miso[1:] == b"\xaa\xbb"


def test_spi_register_slave_address_wrap_and_bounds():
    slave = RegisterSlave(size=4)
    master = SpiMaster()
    master.transfer(slave, bytes([0x02, 1, 2, 3]))  # wraps 2,3,0
    assert slave.peek(2) == 1
    assert slave.peek(3) == 2
    assert slave.peek(0) == 3
    with pytest.raises(ConfigurationError):
        master.transfer(slave, bytes([0x7F]))  # address out of range


def test_spi_transaction_resets_slave_state():
    slave = RegisterSlave()
    master = SpiMaster()
    master.transfer(slave, bytes([0x00, 0x11]))
    master.transfer(slave, bytes([0x01, 0x22]))  # new transaction, new addr
    assert slave.peek(0) == 0x11
    assert slave.peek(1) == 0x22
