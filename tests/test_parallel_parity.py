"""Sharded-runtime parity: process pools must not change a single bit.

The acceptance bar for :mod:`repro.runtime.parallel` is *exact* parity
with the serial batch engine: for any shard count and any worker
scheduling, the merged traces must equal the serial run bitwise.  These
tests assert that for shard counts 1, 2, 3 and N (one rig per worker),
through every public surface (`ShardedEngine`, `Session.run(workers=)`,
`run_batch(workers=)`), and with a worker crash injected mid-run.
"""

import numpy as np
import pytest

from repro.runtime import (BatchEngine, RunResult, Session, ShardedEngine,
                           run_batch, spawn_monitor_seeds)
from repro.runtime.parallel import FAULT_ENV
from repro.station.profiles import hold, staircase
from repro.station.scenarios import build_calibrated_monitor

pytestmark = pytest.mark.parallel

N_MONITORS = 4
SEED = 777
PROFILE = hold(60.0, 1.5)


def _fleet(n=N_MONITORS, seed=SEED):
    """Fresh rigs with the same seed derivation a Session would use."""
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(seed, n)]


def _assert_bit_identical(a, b):
    assert np.array_equal(np.asarray(a.time_s), np.asarray(b.time_s))
    for name in RunResult.STACKED_FIELDS:
        lhs = np.asarray(getattr(a, name))
        rhs = np.asarray(getattr(b, name))
        assert lhs.shape == rhs.shape, name
        assert np.array_equal(lhs, rhs), f"{name} differs bitwise"


@pytest.fixture(scope="module")
def serial_reference():
    """The serial batch-engine run every sharded variant must reproduce."""
    return BatchEngine(_fleet()).run(PROFILE)


@pytest.mark.parametrize("workers", [1, 2, 3, N_MONITORS])
def test_sharded_matches_serial(serial_reference, workers):
    engine = ShardedEngine(_fleet(), workers=workers)
    assert engine.workers == workers
    _assert_bit_identical(engine.run(PROFILE), serial_reference)


def test_sharded_survives_worker_crash(serial_reference, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "crash:0")
    engine = ShardedEngine(_fleet(), workers=2, max_retries=1)
    _assert_bit_identical(engine.run(PROFILE), serial_reference)


def test_sharded_scheduler_accounting_matches_serial():
    serial_rigs, sharded_rigs = _fleet(2), _fleet(2)
    BatchEngine(serial_rigs).run(PROFILE)
    ShardedEngine(sharded_rigs, workers=2).run(PROFILE)
    for serial_rig, sharded_rig in zip(serial_rigs, sharded_rigs):
        assert (sharded_rig.monitor.platform.scheduler.ticks
                == serial_rig.monitor.platform.scheduler.ticks)


def test_session_workers_parity():
    profile = staircase([0.0, 80.0], dwell_s=1.0)
    with Session(n_monitors=3, seed=SEED, fast_calibration=True) as session:
        session.calibrate()
        serial = session.run(profile)
        sharded = session.run(profile, workers=3)
    _assert_bit_identical(sharded, serial)


def test_run_batch_workers_parity(serial_reference):
    _assert_bit_identical(run_batch(_fleet(), PROFILE, workers=3),
                          serial_reference)


def test_oversubscribed_workers_clamp_to_fleet(serial_reference):
    engine = ShardedEngine(_fleet(), workers=64)
    assert engine.workers == N_MONITORS
    _assert_bit_identical(engine.run(PROFILE), serial_reference)
