"""Unit tests for the thermometer DACs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.dac import ThermometerDAC


def test_validation():
    with pytest.raises(ConfigurationError):
        ThermometerDAC(bits=2)
    with pytest.raises(ConfigurationError):
        ThermometerDAC(bits=16)
    with pytest.raises(ConfigurationError):
        ThermometerDAC(vref_v=-1.0)


def test_endpoints():
    dac = ThermometerDAC(bits=12, vref_v=5.0)
    assert dac.ideal_output(0) == 0.0
    assert dac.ideal_output(dac.max_code) == pytest.approx(5.0)


def test_code_range_enforced():
    dac = ThermometerDAC(bits=10)
    with pytest.raises(ConfigurationError):
        dac.ideal_output(-1)
    with pytest.raises(ConfigurationError):
        dac.ideal_output(1024)


def test_monotonicity_guaranteed_by_thermometer_coding():
    """The structural property the CTA loop relies on: every step is
    positive no matter the element mismatch."""
    dac = ThermometerDAC(bits=12, mismatch_sigma=0.02, seed=5)
    levels = np.array([dac.ideal_output(c) for c in range(0, 4096, 7)])
    assert np.all(np.diff(levels) > 0.0)


def test_dnl_bounded_and_nonmissing():
    dac = ThermometerDAC(bits=12, mismatch_sigma=1e-3)
    dnl = dac.dnl_lsb()
    assert np.all(dnl > -1.0)  # no missing codes
    assert np.max(np.abs(dnl)) < 0.1


def test_inl_scales_with_mismatch():
    tight = ThermometerDAC(bits=12, mismatch_sigma=1e-4, seed=3)
    loose = ThermometerDAC(bits=12, mismatch_sigma=1e-2, seed=3)
    assert np.max(np.abs(loose.inl_lsb())) > 5.0 * np.max(np.abs(tight.inl_lsb()))


def test_inl_endpoint_fit_zero_at_ends():
    dac = ThermometerDAC(bits=10, mismatch_sigma=5e-3)
    inl = dac.inl_lsb()
    assert inl[0] == pytest.approx(0.0, abs=1e-9)
    assert inl[-1] == pytest.approx(0.0, abs=1e-9)


def test_code_for_voltage_roundtrip():
    dac = ThermometerDAC(bits=12, vref_v=5.0, mismatch_sigma=0.0)
    for v in [0.0, 1.234, 2.5, 5.0]:
        code = dac.code_for_voltage(v)
        assert dac.ideal_output(code) == pytest.approx(v, abs=dac.lsb_v)


def test_code_for_voltage_clamps():
    dac = ThermometerDAC(bits=12, vref_v=5.0)
    assert dac.code_for_voltage(-3.0) == 0
    assert dac.code_for_voltage(9.0) == dac.max_code


def test_settling_dynamics():
    dac = ThermometerDAC(bits=12, vref_v=5.0, mismatch_sigma=0.0,
                         settling_time_s=1e-3)
    out = dac.update(4095, dt=1e-3)
    assert 0.0 < out < 5.0  # one time constant: ~63 %
    for _ in range(20):
        out = dac.update(4095, dt=1e-3)
    assert out == pytest.approx(5.0, abs=0.01)


def test_instant_update_without_settling():
    dac = ThermometerDAC(bits=12, vref_v=5.0, mismatch_sigma=0.0)
    assert dac.update(2048) == pytest.approx(2048 / 4095 * 5.0)


def test_per_seed_mismatch_reproducible():
    a = ThermometerDAC(bits=10, seed=9)
    b = ThermometerDAC(bits=10, seed=9)
    assert a.ideal_output(511) == b.ideal_output(511)
