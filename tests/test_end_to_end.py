"""System-level integration tests exercising the full stack."""

import numpy as np
import pytest

from repro.errors import SensorFault
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.membrane import WATER_BACKSIDE, Membrane
from repro.station.profiles import bidirectional_staircase, hold, pressure_peaks
from repro.station.scenarios import build_calibrated_monitor


def test_full_chain_tracks_reference(shared_setup):
    """The E1 shape in miniature: measured follows the Promag closely."""
    record = shared_setup.rig.run(hold(speed_cmps=150.0, duration_s=15.0),
                                  record_every_n=100)
    tail = record.steady_window(10.0, 15.0)
    err = np.abs(np.mean(tail.measured_mps) - np.mean(tail.reference_mps))
    assert err < 0.15  # within ~6 % FS even with a fast calibration


def test_direction_detected_both_ways():
    setup = build_calibrated_monitor(seed=7, fast=True, use_pulsed_drive=False)
    record = setup.rig.run(
        bidirectional_staircase([60.0], dwell_s=8.0), record_every_n=100)
    first_half = record.direction[len(record) // 4: len(record) // 2]
    second_half = record.direction[-len(record) // 4:]
    assert np.median(first_half) == 1
    assert np.median(second_half) == -1


def test_pressure_peaks_survived(shared_setup):
    """§5: 7 bar peaks must not kill the prototype sensor."""
    record = shared_setup.rig.run(
        pressure_peaks(speed_cmps=100.0, base_bar=2.0, peak_bar=6.8,
                       dwell_s=4.0, peaks=1), record_every_n=100)
    assert shared_setup.monitor.sensor.failed is None
    assert np.max(record.pressure_pa) > 6.0e5


def test_unfilled_membrane_dies_under_pressure():
    sensor_cfg = MAFConfig(seed=3, membrane=Membrane(backside=WATER_BACKSIDE))
    sensor = MAFSensor(sensor_cfg)
    with pytest.raises(SensorFault):
        sensor.step(1e-3, 1.0, 1.0,
                    FlowConditions(speed_mps=1.0, pressure_pa=6.8e5))


def test_bit_true_setup_builds_and_measures():
    """Slow path smoke test: the bit-true ΣΔ chain closes the loop too."""
    setup = build_calibrated_monitor(
        seed=5, fast=True, bit_true_adc=True, use_pulsed_drive=False,
        calibration_speeds_cmps=[0.0, 40.0, 120.0, 250.0])
    m = setup.monitor.measure(FlowConditions(speed_mps=1.0), 3.0)
    assert m.speed_mps == pytest.approx(1.0, rel=0.35)


def test_monitor_reading_deterministic_for_same_seed():
    a = build_calibrated_monitor(seed=9, fast=True, use_pulsed_drive=False,
                                 calibration_speeds_cmps=[0.0, 40.0, 120.0, 250.0])
    b = build_calibrated_monitor(seed=9, fast=True, use_pulsed_drive=False,
                                 calibration_speeds_cmps=[0.0, 40.0, 120.0, 250.0])
    cond = FlowConditions(speed_mps=0.8)
    ma = a.monitor.measure(cond, 1.0)
    mb = b.monitor.measure(cond, 1.0)
    assert ma.speed_mps == mb.speed_mps


def test_scheduler_utilisation_reported(shared_setup):
    sched = shared_setup.monitor.platform.scheduler
    assert sched.ticks > 0
    assert 0.0 < sched.utilization() < 0.05
    assert not sched.overrun
