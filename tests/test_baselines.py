"""Unit tests for the Promag 50 and turbine-wheel comparator models."""

import numpy as np
import pytest

from repro.baselines.promag import Promag50
from repro.baselines.turbine import TurbineMeter
from repro.errors import ConfigurationError

DT = 1e-3


def run_steady(meter, v, seconds=3.0, dt=DT):
    readings = [meter.read(v, dt) for _ in range(int(seconds / dt))]
    return np.array(readings[len(readings) // 2:])


def test_promag_validation():
    with pytest.raises(ConfigurationError):
        Promag50(full_scale_mps=-1.0)
    with pytest.raises(ConfigurationError):
        Promag50(accuracy_of_reading=0.5)
    with pytest.raises(ConfigurationError):
        Promag50().read(1.0, 0.0)


def test_promag_accuracy_class():
    """Gain error within the ±0.5 % of-reading class."""
    for seed in range(10):
        m = Promag50(seed=seed)
        mean = float(np.mean(run_steady(m, 2.0)))
        assert mean == pytest.approx(2.0, rel=0.005)


def test_promag_resolution_is_high():
    """§5: 'resolution lower than ±0.5 % respect to full scale' — we
    model ~0.05 % FS single-reading noise."""
    m = Promag50()
    noise_3s = 3.0 * np.std(run_steady(m, 1.0))
    assert noise_3s < 0.005 * m.full_scale_mps


def test_promag_bidirectional():
    m = Promag50()
    assert float(np.mean(run_steady(m, -1.5))) == pytest.approx(-1.5, rel=0.01)


def test_promag_response_time():
    m = Promag50(response_time_s=0.1)
    m.read(0.0, DT)
    readings = [m.read(1.0, DT) for _ in range(1000)]
    # One time constant in: ~63 %.
    assert readings[99] == pytest.approx(0.63, abs=0.05)
    assert readings[-1] == pytest.approx(1.0, abs=0.02)


def test_promag_traits():
    t = Promag50().traits
    assert not t.has_moving_parts
    assert not t.hot_insertable
    assert t.cost_eur > 1000.0


def test_turbine_validation():
    with pytest.raises(ConfigurationError):
        TurbineMeter(rotor_time_constant_s=0.0)
    with pytest.raises(ConfigurationError):
        TurbineMeter().read(1.0, -1.0)


def test_turbine_reads_mid_range_accurately():
    m = TurbineMeter()
    mean = float(np.mean(run_steady(m, 1.0, seconds=6.0)))
    assert mean == pytest.approx(1.0, rel=0.02)


def test_turbine_stalls_at_low_flow():
    """Bearing friction: reads zero below the stall speed — the MAF has
    no such dead zone (no moving parts)."""
    m = TurbineMeter(stall_speed_mps=0.05)
    readings = run_steady(m, 0.02, seconds=6.0)
    assert np.all(readings < 0.01)


def test_turbine_lags_steps():
    m = TurbineMeter(rotor_time_constant_s=0.5)
    m.read(0.0, DT)
    out = [m.read(1.0, DT) for _ in range(200)]
    assert out[-1] < 0.5  # still spinning up after 0.2 s


def test_turbine_quantisation():
    """Pulse counting produces visibly discrete output levels."""
    m = TurbineMeter(pulses_per_meter=400.0, gate_time_s=1.0)
    readings = run_steady(m, 1.0, seconds=6.0)
    levels = np.unique(np.round(readings, 9))
    spacing = np.diff(levels)
    assert np.min(spacing) == pytest.approx(1.0 / 400.0, rel=1e-6)


def test_turbine_wear_underreads():
    fresh = TurbineMeter(seed=1)
    worn = TurbineMeter(seed=1)
    worn.age(20_000.0)  # ~2.3 years of service
    v_fresh = float(np.mean(run_steady(fresh, 1.5, seconds=6.0)))
    v_worn = float(np.mean(run_steady(worn, 1.5, seconds=6.0)))
    assert v_worn < v_fresh * 0.98


def test_turbine_reads_speed_magnitude():
    """A simple turbine totaliser cannot sign the flow."""
    m = TurbineMeter()
    assert float(np.mean(run_steady(m, -1.0, seconds=6.0))) > 0.5


def test_turbine_traits():
    t = TurbineMeter().traits
    assert t.has_moving_parts
    assert t.intrusive
