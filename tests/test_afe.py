"""Unit tests for the programmable analog front-end."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SaturationError
from repro.isif.afe import GAIN_STEPS, AFEConfig, AnalogFrontEnd, ReadoutMode

DT = 1e-3


def quiet(mode=ReadoutMode.INSTRUMENT, **kw):
    defaults = dict(mode=mode, offset_v=0.0, noise_density_v_per_rthz=0.0,
                    flicker_corner_hz=0.0)
    defaults.update(kw)
    return AFEConfig(**defaults)


def settle(afe, x, n=200):
    out = 0.0
    for _ in range(n):
        out = afe.process(x, DT)
    return out


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AFEConfig(gain_index=99)
    with pytest.raises(ConfigurationError):
        AFEConfig(rail_v=-1.0)
    with pytest.raises(ConfigurationError):
        AFEConfig(noise_density_v_per_rthz=-1.0)


def test_instrument_gain():
    for idx in (0, 3, 5):
        afe = AnalogFrontEnd(quiet(gain_index=idx))
        out = settle(afe, 0.01)
        assert out == pytest.approx(0.01 * GAIN_STEPS[idx], rel=1e-6)


def test_offset_and_trim():
    afe = AnalogFrontEnd(quiet(offset_v=1e-3, gain_index=2))
    biased = settle(afe, 0.0)
    assert biased == pytest.approx(1e-3 * GAIN_STEPS[2], rel=1e-6)
    afe.retrim(1e-3)
    trimmed = settle(afe, 0.0)
    assert abs(trimmed) < 1e-9


def test_rail_clipping_flag():
    afe = AnalogFrontEnd(quiet(gain_index=7, rail_v=2.5))
    out = settle(afe, 0.1)  # 0.1 * 200 = 20 V >> rail
    assert out == pytest.approx(2.5)
    assert afe.clipped
    assert not afe.clipped  # sticky flag cleared on read


def test_strict_mode_raises():
    afe = AnalogFrontEnd(quiet(gain_index=7, rail_v=2.5, strict=True))
    with pytest.raises(SaturationError):
        settle(afe, 0.1)


def test_transresistive_mode():
    afe = AnalogFrontEnd(quiet(mode=ReadoutMode.TRANSRESISTIVE,
                               feedback_resistance_ohm=1e5))
    out = settle(afe, 1e-6)  # 1 uA through 100k -> 0.1 V
    assert out == pytest.approx(0.1, rel=1e-6)


def test_charge_mode():
    afe = AnalogFrontEnd(quiet(mode=ReadoutMode.CHARGE,
                               feedback_capacitance_f=10e-12))
    out = settle(afe, 1e-12)  # 1 pC on 10 pF -> 0.1 V
    assert out == pytest.approx(0.1, rel=1e-6)


def test_bandwidth_attenuates_fast_signal():
    afe = AnalogFrontEnd(quiet(gain_index=0, bandwidth_hz=50.0))
    # 400 Hz square-ish excitation: output swing far below input swing.
    outs = [afe.process(0.5 if (i // 1) % 2 else -0.5, 1 / 800.0)
            for i in range(400)]
    assert np.ptp(np.array(outs[100:])) < 0.6  # heavily low-passed vs 1.0 swing


def test_noise_scales_with_gain():
    lo = AnalogFrontEnd(AFEConfig(gain_index=0, offset_v=0.0),
                        rng=np.random.default_rng(1))
    hi = AnalogFrontEnd(AFEConfig(gain_index=6, offset_v=0.0),
                        rng=np.random.default_rng(1))
    out_lo = np.array([lo.process(0.0, DT) for _ in range(2000)])
    out_hi = np.array([hi.process(0.0, DT) for _ in range(2000)])
    assert np.std(out_hi) > 10.0 * np.std(out_lo)


def test_invalid_dt():
    with pytest.raises(ConfigurationError):
        AnalogFrontEnd().process(0.0, 0.0)


def test_noise_deterministic_per_seed():
    a = AnalogFrontEnd(rng=np.random.default_rng(3))
    b = AnalogFrontEnd(rng=np.random.default_rng(3))
    for _ in range(50):
        assert a.process(1e-3, DT) == b.process(1e-3, DT)
