"""Property-based invariants for the telemetry merge algebra.

Hypothesis is an optional dev dependency: the whole module skips when
it is absent, so the tier-1 suite never depends on it.  The properties
are exactly what the sharded runtime's harvest merge relies on:

- :meth:`MetricsSnapshot.merge` is associative with ``empty()`` as the
  two-sided identity;
- replaying one observation stream split across any shard partition
  and folding the shard snapshots in order reproduces the single-shot
  registry bit-for-bit (counters, gauges *and* histogram reservoirs,
  including last-K truncation);
- the Prometheus text format round-trips counter/gauge values with
  their Python types (the integral-float fix).

Values are dyadic rationals (integers scaled by 1/1024) so float sums
are exact and the bit-equality assertions are meaningful.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.observability import (MetricsRegistry, MetricsSnapshot,
                                 export_prometheus, parse_prometheus,
                                 merge_states)  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)

#: Small reservoir so the partition property exercises truncation.
RESERVOIR_SIZE = 8

_dyadic = st.integers(min_value=-2**20, max_value=2**20).map(
    lambda n: n / 1024.0)

_counter_state = st.integers(min_value=0, max_value=2**30).map(
    lambda v: {"type": "counter", "value": v})
_gauge_state = st.tuples(_dyadic, st.integers(min_value=0, max_value=10**6)) \
    .map(lambda t: {"type": "gauge", "value": t[0], "updated_s": float(t[1])})
_hist_state = st.lists(_dyadic, max_size=12).map(lambda vs: {
    "type": "histogram",
    "count": len(vs),
    "sum": sum(vs),
    "min": min(vs) if vs else None,
    "max": max(vs) if vs else None,
    "reservoir": vs[-RESERVOIR_SIZE:],
    "reservoir_size": RESERVOIR_SIZE,
})
_state = st.one_of(_counter_state, _gauge_state, _hist_state)

_names = st.lists(st.sampled_from(["m.a", "m.b", "m.c", "m.d"]),
                  unique=True, min_size=0, max_size=4)


@st.composite
def _snapshots(draw, count):
    """``count`` snapshots over a shared name->kind assignment.

    Shards of one run observe the *same* instruments, so the per-name
    kind must agree across the drawn snapshots (mismatches raise by
    design and are tested separately).
    """
    kinds = {name: draw(st.sampled_from(["counter", "gauge", "histogram"]))
             for name in draw(_names)}
    by_kind = {"counter": _counter_state, "gauge": _gauge_state,
               "histogram": _hist_state}
    snaps = []
    for _ in range(count):
        metrics = {}
        for name, kind in kinds.items():
            if draw(st.booleans()):
                metrics[name] = draw(by_kind[kind])
        snaps.append(MetricsSnapshot(metrics=metrics))
    return snaps


@SETTINGS
@given(_snapshots(count=3))
def test_merge_is_associative(snaps):
    s1, s2, s3 = snaps
    left = s1.merge(s2).merge(s3)
    right = s1.merge(s2.merge(s3))
    assert left.metrics == right.metrics


@SETTINGS
@given(_snapshots(count=1))
def test_empty_is_two_sided_identity(snaps):
    (snap,) = snaps
    assert snap.merge(MetricsSnapshot.empty()).metrics == snap.metrics
    assert MetricsSnapshot.empty().merge(snap).metrics == snap.metrics


@st.composite
def _observation_stream(draw):
    """A stream of (kind, name, value) observations plus cut points."""
    kinds = {name: draw(st.sampled_from(["counter", "gauge", "histogram"]))
             for name in draw(_names.filter(bool))}
    n_obs = draw(st.integers(min_value=1, max_value=30))
    names = sorted(kinds)
    stream = []
    for _ in range(n_obs):
        name = draw(st.sampled_from(names))
        stream.append((kinds[name], name, draw(_dyadic)))
    cuts = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=n_obs), max_size=4)))
    return kinds, stream, cuts


def _replay(kinds, observations, tick):
    """Apply observations to a fresh registry; returns its snapshot.

    ``tick`` provides strictly increasing gauge timestamps across
    shards (within one run wall clocks are monotone across the split).
    """
    registry = MetricsRegistry(enabled=True)
    for kind, name, value in observations:
        if kind == "counter":
            registry.counter(name).inc(abs(value))
        elif kind == "gauge":
            gauge = registry.gauge(name)
            gauge.set(value)
            gauge.updated_s = float(next(tick))
        else:
            registry.histogram(
                name, reservoir_size=RESERVOIR_SIZE).observe(value)
    return MetricsSnapshot.capture(registry)


@SETTINGS
@given(_observation_stream())
def test_split_replay_folds_to_single_shot(case):
    kinds, stream, cuts = case
    tick = iter(range(len(stream)))
    whole = _replay(kinds, stream, tick)
    tick = iter(range(len(stream)))
    merged = MetricsSnapshot.empty()
    previous = 0
    for cut in cuts + [len(stream)]:
        merged = merged.merge(_replay(kinds, stream[previous:cut], tick))
        previous = cut
    assert merged.metrics == whole.metrics


@SETTINGS
@given(_snapshots(count=3), st.permutations([0, 1, 2]))
def test_counter_and_histogram_totals_are_order_invariant(snaps, order):
    """Totals (not gauges/reservoirs, which are time-ordered) commute."""
    forward = snaps[0].merge(snaps[1]).merge(snaps[2])
    shuffled = snaps[order[0]].merge(snaps[order[1]]).merge(snaps[order[2]])
    for name, state in forward.metrics.items():
        other = shuffled.metrics[name]
        if state["type"] == "counter":
            assert other["value"] == state["value"]
        elif state["type"] == "histogram":
            assert other["count"] == state["count"]
            assert other["sum"] == state["sum"]
            assert other["min"] == state["min"]
            assert other["max"] == state["max"]


@SETTINGS
@given(st.integers(min_value=0, max_value=2**40), _dyadic, _dyadic)
def test_prometheus_round_trip_preserves_types(count, gauge_value, extra):
    registry = MetricsRegistry(enabled=True)
    registry.counter("p.int").inc(count)
    registry.counter("p.float").inc(abs(extra) + 0.5)
    registry.gauge("p.gauge").set(gauge_value)
    parsed = parse_prometheus(export_prometheus(registry))
    assert parsed["p.int"]["value"] == count
    assert isinstance(parsed["p.int"]["value"], int)
    assert parsed["p.float"]["value"] == abs(extra) + 0.5
    assert isinstance(parsed["p.float"]["value"], float)
    assert parsed["p.gauge"]["value"] == gauge_value
    assert isinstance(parsed["p.gauge"]["value"], float)
    # Idempotent: parsing the re-export of the parse changes nothing.
    assert parse_prometheus(export_prometheus(parsed)) == parsed


def test_merge_states_rejects_cross_kind():
    with pytest.raises(ConfigurationError):
        merge_states({"type": "counter", "value": 1},
                     {"type": "histogram", "count": 0, "sum": 0.0,
                      "min": None, "max": None, "reservoir": [],
                      "reservoir_size": 8})
