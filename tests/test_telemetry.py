"""Unit tests for the telemetry framing layer."""

import pytest

from repro.conditioning.monitor import FlowMeasurement
from repro.conditioning.telemetry import (
    FRAME_SIZE,
    FrameError,
    TelemetryChannel,
    decode_frame,
    encode_frame,
)
from repro.errors import ConfigurationError
from repro.isif.uart import Parity, UartLink


def measurement(speed=1.234, coverage=0.0, valid=True, t=12.34):
    return FlowMeasurement(time_s=t, speed_mps=speed,
                           direction=1 if speed >= 0 else -1,
                           bubble_coverage=coverage, valid=valid)


def test_frame_roundtrip():
    frame = decode_frame(encode_frame(measurement(), sequence=7))
    assert frame.sequence == 7
    assert frame.flow_mps == pytest.approx(1.234, abs=1e-3)
    assert frame.time_s == pytest.approx(12.34)
    assert frame.valid
    assert not frame.bubble_warning


def test_frame_negative_flow_and_flags():
    frame = decode_frame(encode_frame(measurement(speed=-0.5, coverage=0.2),
                                      sequence=0))
    assert frame.flow_mps == pytest.approx(-0.5, abs=1e-3)
    assert frame.bubble_warning
    assert frame.bubble_coverage == pytest.approx(0.2, abs=0.01)


def test_frame_flow_saturates():
    frame = decode_frame(encode_frame(measurement(speed=99.0), sequence=0))
    assert frame.flow_mps == pytest.approx(32.767)


def test_frame_size_constant():
    assert len(encode_frame(measurement(), 0)) == FRAME_SIZE


def test_bad_sequence_rejected():
    with pytest.raises(ConfigurationError):
        encode_frame(measurement(), sequence=70000)


def test_decode_rejects_truncated():
    with pytest.raises(FrameError):
        decode_frame(b"\x55\xaa\x00")


@pytest.mark.parametrize("length", [0, 1, FRAME_SIZE - 1, FRAME_SIZE + 1,
                                    2 * FRAME_SIZE])
def test_decode_rejects_every_wrong_length(length):
    raw = (encode_frame(measurement(), 5) * 2)[:length]
    with pytest.raises(FrameError) as exc_info:
        decode_frame(raw)
    assert exc_info.value.reason == "length"


def test_decode_rejects_bit_flip():
    raw = bytearray(encode_frame(measurement(), 3))
    raw[6] ^= 0x01
    with pytest.raises(FrameError):
        decode_frame(bytes(raw))


def test_decode_rejects_every_single_bit_flip():
    """CRC-16 guarantees detection of any single-bit error; prove it
    exhaustively over every bit of the frame (payload and CRC alike)."""
    pristine = encode_frame(measurement(speed=1.5, coverage=0.1), 42)
    for byte_index in range(FRAME_SIZE):
        for bit in range(8):
            raw = bytearray(pristine)
            raw[byte_index] ^= 1 << bit
            with pytest.raises(FrameError) as exc_info:
                decode_frame(bytes(raw))
            assert exc_info.value.reason in ("crc", "sync")


def test_decode_rejects_bad_sync():
    raw = bytearray(encode_frame(measurement(), 3))
    raw[0] = 0x00  # breaks sync (and CRC, but sync path also guarded)
    with pytest.raises(FrameError):
        decode_frame(bytes(raw))


def test_decode_rejects_bad_sync_with_valid_crc():
    """A frame whose CRC is consistent but whose sync word is wrong is
    not a frame at all — the sync check must fire even when the CRC
    passes (e.g. a resynchronisation slip onto foreign data)."""
    from repro.isif.eeprom import crc16_ccitt

    raw = bytearray(encode_frame(measurement(), 3))
    raw[0], raw[1] = 0xDE, 0xAD
    body = bytes(raw[:-2])
    raw[-2:] = crc16_ccitt(body).to_bytes(2, "big")
    with pytest.raises(FrameError) as exc_info:
        decode_frame(bytes(raw))
    assert exc_info.value.reason == "sync"


def test_frame_error_reason_attribute():
    """FrameError carries a machine-readable reason and is importable
    from the top-level package (it is part of the exception hierarchy)."""
    import repro

    assert repro.FrameError is FrameError
    with pytest.raises(FrameError) as exc_info:
        decode_frame(b"")
    assert exc_info.value.reason == "length"
    assert isinstance(exc_info.value, repro.ReproError)


def test_channel_counts_crc_failures():
    ch = TelemetryChannel(UartLink(bit_error_rate=0.01, seed=11))
    for i in range(200):
        ch.send(measurement(t=float(i)))
    assert ch.frames_sent == 200
    assert ch.frames_dropped > 0
    assert 0 < ch.crc_failures <= ch.frames_dropped


def test_channel_clean_link_delivers_everything():
    ch = TelemetryChannel(UartLink())
    for i in range(20):
        frame = ch.send(measurement(t=float(i)))
        assert frame is not None
        assert frame.sequence == i
    assert ch.drop_rate == 0.0


def test_channel_noisy_link_drops_but_never_corrupts():
    ch = TelemetryChannel(UartLink(parity=Parity.EVEN,
                                   bit_error_rate=0.003, seed=9))
    delivered = []
    for i in range(300):
        frame = ch.send(measurement(speed=1.0, t=float(i)))
        if frame is not None:
            delivered.append(frame)
    assert ch.frames_dropped > 0          # noise is real
    assert len(delivered) > 100           # but the link still works
    for frame in delivered:               # and nothing corrupt got through
        assert frame.flow_mps == pytest.approx(1.0, abs=1e-3)


def test_sequence_wraps_16bit():
    ch = TelemetryChannel(UartLink())
    ch._sequence = 0xFFFF
    first = ch.send(measurement())
    second = ch.send(measurement())
    assert first.sequence == 0xFFFF
    assert second.sequence == 0
