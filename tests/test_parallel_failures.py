"""Sharded-runtime failure semantics: retry, fallback, watchdog.

Worker failures are injected through the ``REPRO_SHARD_FAULT`` env-var
hook in the worker entrypoint (crash = hard ``os._exit``, hang = sleep,
raise = in-worker exception, crash-once = die on the first attempt
only).  Every scenario must still produce the bit-identical serial
result; these tests additionally pin the degradation path taken via the
``shard.retries`` / ``shard.fallbacks`` observability counters.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observability import MetricsRegistry, get_registry, set_registry
from repro.runtime import BatchEngine, RunResult, ShardedEngine
from repro.runtime.parallel import FAULT_ENV
from repro.station.fleet import MonitoredNetwork
from repro.station.network import PipeNetwork
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor

pytestmark = pytest.mark.parallel

PROFILE = hold(50.0, 1.0)
SEEDS = (31, 32, 33)


def _fleet():
    return [build_calibrated_monitor(seed=s, fast=True).rig for s in SEEDS]


def _assert_bit_identical(a, b):
    assert np.array_equal(np.asarray(a.time_s), np.asarray(b.time_s))
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(a, name)),
                              np.asarray(getattr(b, name))), name


@pytest.fixture()
def metrics():
    """A fresh enabled registry so counter assertions see only this test."""
    registry = MetricsRegistry(enabled=True)
    previous = get_registry()
    set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture(scope="module")
def serial_reference():
    return BatchEngine(_fleet()).run(PROFILE)


def _counter(registry, name):
    return registry.snapshot().get(name, {}).get("value", 0)


def test_crash_exhausts_retries_then_falls_back(
        serial_reference, metrics, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "crash:1")
    engine = ShardedEngine(_fleet(), workers=3, max_retries=1)
    result = engine.run(PROFILE)
    _assert_bit_identical(result, serial_reference)
    assert _counter(metrics, "shard.retries") >= 1
    assert _counter(metrics, "shard.fallbacks") >= 1


def test_crash_once_recovers_via_retry(
        serial_reference, metrics, monkeypatch, tmp_path):
    monkeypatch.setenv(FAULT_ENV, f"crash-once:0:{tmp_path}")
    engine = ShardedEngine(_fleet(), workers=3, max_retries=2)
    result = engine.run(PROFILE)
    _assert_bit_identical(result, serial_reference)
    assert _counter(metrics, "shard.retries") >= 1
    assert (tmp_path / "shard0.tripped").exists()


def test_hung_worker_is_killed_and_falls_back(
        serial_reference, metrics, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "hang:0")
    engine = ShardedEngine(_fleet(), workers=3, max_retries=0,
                           timeout_s=2.0)
    result = engine.run(PROFILE)
    _assert_bit_identical(result, serial_reference)
    assert _counter(metrics, "shard.fallbacks") >= 1


def test_in_worker_exception_degrades_gracefully(
        serial_reference, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "raise:2")
    engine = ShardedEngine(_fleet(), workers=3, max_retries=1)
    _assert_bit_identical(engine.run(PROFILE), serial_reference)


def test_deterministic_sensor_fault_is_not_retried(metrics, monkeypatch):
    # A membrane burst is physics, not infrastructure: the sharded run
    # must re-raise it without burning retries or falling back.
    from repro.errors import SensorFault
    burst = hold(50.0, 1.0, pressure_bar=100.0)
    engine = ShardedEngine(_fleet(), workers=3, max_retries=2)
    with pytest.raises(SensorFault):
        engine.run(burst)
    assert _counter(metrics, "shard.retries") == 0
    assert _counter(metrics, "shard.fallbacks") == 0


def test_knob_validation():
    rigs = _fleet()
    with pytest.raises(ConfigurationError):
        ShardedEngine(rigs, workers=0)
    with pytest.raises(ConfigurationError):
        ShardedEngine(rigs, max_retries=-1)
    with pytest.raises(ConfigurationError):
        ShardedEngine(rigs, timeout_s=0.0)


def test_session_refuses_workers_on_scalar_engine():
    from repro.runtime import Session
    with Session(n_monitors=1, seed=5, fast_calibration=True) as session:
        session.calibrate()
        with pytest.raises(ConfigurationError):
            session.run(PROFILE, engine="scalar", workers=2)


def test_monitored_network_validates_workers():
    network = PipeNetwork()
    network.add_pipe("reservoir", "a", demand_m3_s=0.5e-3)
    fleet = MonitoredNetwork(network, seed=1)
    with pytest.raises(ConfigurationError):
        fleet.run(0.1, workers=0)
    # workers=1 is accepted (documented serial execution).
    report = fleet.run(0.1, workers=1)
    assert report.snapshots > 0
