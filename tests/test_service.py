"""Streaming fleet-service tests: parity, cohorts, backpressure, faults.

All tests drive the single-threaded asyncio service with
``asyncio.run`` from synchronous test functions.  The load-bearing
claims: streamed windows stitch bit-identical to standalone
``Session.run``; clients coalesce into shared-engine cohorts; a detach
finalizes a bit-exact partial without perturbing survivors; engine
faults propagate to every cohort member as the typed exception; a slow
consumer stalls only its cohort, at bounded memory.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError, SensorFault, ServiceError
from repro.runtime import RunResult, Session
from repro.runtime.batch import BatchEngine
from repro.service import FleetService, Snapshot, SnapshotStream, connect
from repro.station.profiles import hold, staircase

pytestmark = pytest.mark.service

PROFILE = staircase([20.0, 60.0, 40.0], dwell_s=1.0)  # 3000 steps at 1 kHz


async def wait_until(predicate, timeout=30.0):
    """Yield to the service loop until ``predicate()`` holds, bounded.

    The tick loop shares this event loop, so a zero-delay sleep hands
    it control between polls; ``asyncio.wait_for`` bounds the whole
    wait so a service regression fails the test in seconds instead of
    hanging the suite on an unbounded busy-wait or a guessed number of
    yields.
    """

    async def poll():
        while not predicate():
            await asyncio.sleep(0)

    await asyncio.wait_for(poll(), timeout=timeout)


def standalone(profile, *, n_monitors, seed):
    """The reference a service client must match bit for bit."""
    with Session(n_monitors=n_monitors, seed=seed,
                 fast_calibration=True) as session:
        session.calibrate()
        return session.run(profile)


def assert_traces_equal(a, b, ticks=None):
    hi = len(a) if ticks is None else ticks
    assert np.array_equal(a.time_s, b.time_s[:hi])
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(getattr(a, name),
                              getattr(b, name)[:, :hi]), name


def test_cohort_coalescing_and_bit_exact_parity():
    """Two same-config clients share one engine; both match Session.run."""

    async def main():
        async with FleetService(tick_steps=700) as service:
            a = await service.attach(PROFILE, n_monitors=2, seed=11,
                                     fast_calibration=True)
            b = await service.attach(PROFILE, n_monitors=3, seed=12,
                                     fast_calibration=True)
            snaps_a = [snap async for snap in a.snapshots()]
            result_a, result_b = await asyncio.gather(a.result(), b.result())
            stats = service.stats()
        return a, b, snaps_a, result_a, result_b, stats

    a, b, snaps_a, result_a, result_b, stats = asyncio.run(main())
    assert a.group_id == b.group_id  # one shared engine
    assert a.client_id != b.client_id
    assert a.total_steps == 3000 and a.record_every_n == 20
    # 3000 steps in 700-step ticks -> 5 windows, monotone progress
    assert [snap.seq for snap in snaps_a] == list(range(5))
    assert [snap.done_steps for snap in snaps_a] == [700, 1400, 2100,
                                                     2800, 3000]
    assert snaps_a[-1].complete and not snaps_a[0].complete
    assert "run.measured_mps" in snaps_a[0].summary
    # windows stitch into exactly the awaited result
    assert_traces_equal(RunResult.concat_time([s.window for s in snaps_a]),
                        result_a)
    # and both clients match a standalone run of their own config/seed
    assert_traces_equal(result_a, standalone(PROFILE, n_monitors=2, seed=11))
    assert_traces_equal(result_b, standalone(PROFILE, n_monitors=3, seed=12))
    assert stats["completed"] == 2 and stats["clients"] == 0
    assert not a.attached and not b.attached


def test_config_mismatch_opens_separate_cohorts():
    async def main():
        async with FleetService() as service:
            base = await service.attach(hold(50.0, 0.5), seed=5,
                                        fast_calibration=True)
            cadence = await service.attach(hold(50.0, 0.5), seed=5,
                                           fast_calibration=True,
                                           record_every_n=10)
            numerics = await service.attach(hold(50.0, 0.5), seed=5,
                                            fast_calibration=True,
                                            numerics="fast")
            groups = {base.group_id, cadence.group_id, numerics.group_id}
            await asyncio.gather(base.result(), cadence.result(),
                                 numerics.result())
        return groups

    assert len(asyncio.run(main())) == 3


def test_detach_mid_run_partial_and_survivor_parity():
    """A detach yields a bit-exact partial and never disturbs survivors."""

    async def main():
        async with FleetService(tick_steps=700, max_pending=2) as service:
            a = await service.attach(PROFILE, n_monitors=2, seed=11,
                                     fast_calibration=True)
            b = await service.attach(PROFILE, n_monitors=1, seed=12,
                                     fast_calibration=True)
            # nobody consumes: the cohort stalls at max_pending ticks
            await wait_until(lambda: b.done_steps >= 1400)
            partial = await b.detach()
            with pytest.raises(ServiceError) as err:
                await b.detach()
            # the queued windows still drain after the detach close
            leftovers = [snap async for snap in b.snapshots()]
            # draining a frees the stall; the cohort runs to the horizon
            async for _ in a.snapshots():
                pass
            result_a = await a.result()
            # b's count froze at detach; survivors advancing cannot move it
            frozen = b.done_steps
        return partial, err.value, result_a, leftovers, frozen

    partial, detach_err, result_a, leftovers, frozen = asyncio.run(main())
    assert detach_err.reason == "detached"
    assert frozen == 1400
    assert [snap.seq for snap in leftovers] == [0, 1]
    assert_traces_equal(
        RunResult.concat_time([snap.window for snap in leftovers]), partial)
    # partial == the first 1400 steps (70 ticks) of b's standalone run
    assert len(partial) == 70
    assert_traces_equal(partial, standalone(PROFILE, n_monitors=1, seed=12),
                        ticks=70)
    # survivor bits unchanged by the mid-run drop
    assert_traces_equal(result_a, standalone(PROFILE, n_monitors=2, seed=11))


def test_detach_before_any_tick_returns_empty_partial():
    async def main():
        service = FleetService()  # never started: no ticks can happen
        client = await service.attach(hold(50.0, 0.5), seed=5,
                                      fast_calibration=True)
        partial = await client.detach()
        await service.stop()
        return client, partial

    client, partial = asyncio.run(main())
    assert len(partial) == 0 and partial.n_monitors == 1
    assert not client.attached


def test_attach_storm_lands_in_one_cohort():
    """100+ clients attached before the first tick share one engine."""
    profile = hold(60.0, 0.3)
    seeds = [31 + (i % 8) for i in range(104)]

    async def main():
        service = FleetService()
        clients = [
            await service.attach(profile, seed=seed, fast_calibration=True)
            for seed in seeds
        ]
        group_ids = {client.group_id for client in clients}
        await service.start()
        results = await asyncio.gather(*(c.result() for c in clients))
        fleet = service.stats()["attaches"]
        await service.stop()
        return group_ids, results, fleet

    group_ids, results, attaches = asyncio.run(main())
    assert len(group_ids) == 1  # one cohort, one 104-rig engine
    assert attaches == 104
    references = {seed: standalone(profile, n_monitors=1, seed=seed)
                  for seed in set(seeds)}
    for seed, result in zip(seeds, results):
        assert_traces_equal(result, references[seed])


def test_engine_crash_propagates_typed_to_all_members():
    burst = hold(50.0, 1.0, pressure_bar=80.0)  # over membrane rating

    async def main():
        async with FleetService(tick_steps=200) as service:
            doomed_a = await service.attach(burst, seed=5,
                                            fast_calibration=True)
            doomed_b = await service.attach(burst, n_monitors=2, seed=6,
                                            fast_calibration=True)
            bystander = await service.attach(hold(40.0, 0.5), seed=7,
                                             fast_calibration=True)
            with pytest.raises(SensorFault):
                await doomed_a.result()
            with pytest.raises(SensorFault):
                async for _ in doomed_b.snapshots():
                    pass
            survivor = await bystander.result()
            stats = service.stats()
        return survivor, stats

    survivor, stats = asyncio.run(main())
    assert stats["crashed_groups"] == 1
    assert stats["completed"] == 1
    assert_traces_equal(survivor, standalone(hold(40.0, 0.5),
                                             n_monitors=1, seed=7))


def test_unexpected_tick_fault_fails_clients_not_the_loop():
    """A non-ReproError escaping a tick resolves futures, not kills the loop."""

    def buggy_advance(self, *args, **kwargs):
        raise RuntimeError("service bug, not an engine fault")

    async def main():
        async with FleetService(tick_steps=100) as service:
            doomed = await service.attach(hold(50.0, 0.5), seed=5,
                                          fast_calibration=True)
            original = BatchEngine.advance
            BatchEngine.advance = buggy_advance
            try:
                with pytest.raises(RuntimeError):
                    await doomed.result()
                with pytest.raises(RuntimeError):
                    await doomed.snapshot()
            finally:
                BatchEngine.advance = original
            alive = service.running
            # the loop survived: a fresh cohort still runs to completion
            fresh = await service.attach(hold(50.0, 0.3), seed=7,
                                         fast_calibration=True)
            result = await fresh.result()
            stats = service.stats()
        return alive, result, stats

    alive, result, stats = asyncio.run(main())
    assert alive
    assert stats["crashed_groups"] == 1 and stats["completed"] == 1
    assert_traces_equal(result, standalone(hold(50.0, 0.3),
                                           n_monitors=1, seed=7))


def test_attach_validation_failure_closes_the_opened_session(monkeypatch):
    """A rejected attach must not leak the session it already opened."""
    from repro.service import service as service_module

    built = []

    class RecordingSession(Session):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            built.append(self)

    monkeypatch.setattr(service_module, "Session", RecordingSession)

    async def main():
        async with FleetService() as service:
            with pytest.raises(ConfigurationError):
                await service.attach(hold(50.0, 0.5), seed=5,
                                     record_every_n=0,
                                     fast_calibration=True)
            with pytest.raises(ConfigurationError):
                await service.attach(hold(50.0, 1e-4), seed=5,
                                     fast_calibration=True)
            return service.stats()

    stats = asyncio.run(main())
    assert stats["clients"] == 0 and not stats["groups"]
    assert [session.state for session in built] == ["closed", "closed"]


def test_backpressure_bounds_memory_and_drains_to_completion():
    profile = hold(60.0, 10.0)  # 10000 steps

    async def main():
        async with FleetService(tick_steps=100, max_pending=3) as service:
            client = await service.attach(profile, seed=9,
                                          fast_calibration=True)
            # let the loop run with no consumer until it provably stalls
            await wait_until(lambda: client.stream_depth == 3 and
                             service.stats()["backpressure_stalls"] > 0)
            stalled = (client.stream_depth, client.done_steps,
                       service.stats()["backpressure_stalls"])
            snaps = [snap async for snap in client.snapshots()]
            result = await client.result()
        return stalled, snaps, result

    (depth, done, stalls), snaps, result = asyncio.run(main())
    # exactly bound ticks ran, then the producer stalled (bounded memory)
    assert depth == 3 and done == 300
    assert stalls > 0
    # draining released the stall and the run finished
    assert len(snaps) == 100
    assert len(result) == 500
    assert_traces_equal(result, standalone(profile, n_monitors=1, seed=9))


def test_stop_fails_attached_clients_with_service_error():
    async def main():
        service = await FleetService(max_pending=1).start()
        client = await service.attach(hold(60.0, 10.0), seed=9,
                                      fast_calibration=True)
        await asyncio.sleep(0)
        await service.stop()
        with pytest.raises(ServiceError) as from_result:
            await client.result()
        with pytest.raises(ServiceError) as from_stream:
            while await client.snapshot() is not None:
                pass
        with pytest.raises(ServiceError) as from_attach:
            await service.attach(hold(60.0, 1.0), fast_calibration=True)
        return from_result.value, from_stream.value, from_attach.value

    from_result, from_stream, from_attach = asyncio.run(main())
    assert from_result.reason == "stopped"
    assert from_stream.reason == "stopped"
    assert from_attach.reason == "stopped"


def test_snapshot_stream_bound_and_close_semantics():
    def snap(seq):
        window = standalone(hold(50.0, 0.1), n_monitors=1, seed=3)
        return Snapshot(seq=seq, window=window, summary=window.summary(),
                        done_steps=100 * (seq + 1), total_steps=300)

    async def main():
        freed = []
        stream = SnapshotStream(2, on_space=lambda: freed.append(True))
        assert stream.has_space and stream.depth == 0
        stream.push(snap(0))
        stream.push(snap(1))
        assert not stream.has_space
        with pytest.raises(ServiceError) as overrun:
            stream.push(snap(2))
        assert overrun.value.reason == "backpressure"
        first = await stream.get()
        assert first.seq == 0 and freed == [True]
        stream.close()  # normal close: the queued item still drains
        stream.close()  # idempotent
        with pytest.raises(ServiceError):
            stream.push(snap(3))
        assert (await stream.get()).seq == 1
        assert await stream.get() is None

        errored = SnapshotStream(2)
        errored.push(snap(0))
        errored.close(SensorFault("membrane burst"))
        with pytest.raises(SensorFault):  # error close drops the queue
            await errored.get()
        with pytest.raises(ServiceError):
            SnapshotStream(0)

    asyncio.run(main())


def test_facade_run_and_connect_are_bit_identical():
    profile = hold(55.0, 0.5)
    oneshot = repro.run(profile, n_monitors=2, seed=17,
                        fast_calibration=True)

    async def main():
        async with connect(tick_steps=300) as client:
            return await client.run(profile, n_monitors=2, seed=17,
                                    fast_calibration=True)

    assert_traces_equal(asyncio.run(main()), oneshot)
    assert_traces_equal(oneshot, standalone(profile, n_monitors=2, seed=17))


def test_facade_run_drains_past_the_stream_bound():
    """client.run on a profile longer than max_pending*tick_steps samples
    must drain the stream itself — it used to deadlock awaiting result()."""
    profile = hold(60.0, 2.0)  # 2000 steps = 20 ticks of 100 >> 2 pending

    async def main():
        async with connect(tick_steps=100, max_pending=2) as client:
            return await asyncio.wait_for(
                client.run(profile, seed=13, fast_calibration=True),
                timeout=60.0)

    assert_traces_equal(asyncio.run(main()),
                        standalone(profile, n_monitors=1, seed=13))


def test_connect_shares_a_resident_service_without_owning_it():
    async def main():
        async with FleetService() as service:
            with pytest.raises(ServiceError):
                connect(service, tick_steps=100)  # service or kwargs
            client = connect(service)
            assert client.service is service
            session = await client.attach(hold(50.0, 0.3), seed=5,
                                          fast_calibration=True)
            result = await session.result()
            await client.close()  # shared: must NOT stop the service
            still_running = service.running
            again = await client.run(hold(50.0, 0.3), seed=5,
                                     fast_calibration=True)
        return result, still_running, again

    result, still_running, again = asyncio.run(main())
    assert still_running
    assert_traces_equal(result, again)


def test_service_stats_reports_live_cohorts():
    async def main():
        async with FleetService(tick_steps=100, max_pending=1) as service:
            client = await service.attach(hold(60.0, 5.0), seed=9,
                                          fast_calibration=True)
            open_stats = service.stats()  # before the first tick
            await wait_until(lambda: (stats := service.stats())["groups"]
                             and stats["groups"][0]["sealed"]
                             and stats["groups"][0]["done_steps"] > 0)
            sealed_stats = service.stats()
            await client.detach()
        return open_stats, sealed_stats

    open_stats, sealed_stats = asyncio.run(main())
    assert open_stats["running"] and open_stats["clients"] == 1
    (open_group,) = open_stats["groups"]
    assert not open_group["sealed"] and open_group["done_steps"] == 0
    (sealed_group,) = sealed_stats["groups"]
    assert sealed_group["sealed"] and sealed_group["fleet_size"] == 1
    assert 0 < sealed_group["done_steps"] <= sealed_group["total_steps"]


def standalone_spec(profile, fleet):
    """Standalone reference for a FleetSpec-described client."""
    with Session(fleet=fleet) as session:
        session.calibrate()
        return session.run(profile)


def test_mixed_build_clients_share_one_cohort():
    """Clients whose builds differ structurally still coalesce: the
    cohort runs on a MixedEngine that sub-batches per config group, and
    every client's stream stays bit-identical to its standalone run."""
    from repro.runtime import FleetSpec

    short = staircase([0.0, 60.0], dwell_s=1.0)
    spec = FleetSpec.homogeneous(1, seed=13, fast_calibration=True)

    async def main():
        async with FleetService(tick_steps=700) as service:
            plain = await service.attach(short, n_monitors=1, seed=11,
                                         fast_calibration=True)
            hot = await service.attach(short, n_monitors=1, seed=12,
                                       overtemperature_k=7.0,
                                       fast_calibration=True)
            from_spec = await service.attach(short, fleet=spec)
            mid_stats = {}

            async def consume(client, probe=False):
                async for snap in client.snapshots():
                    if probe and not mid_stats:
                        mid_stats.update(service.stats())
                return await client.result()

            results = await asyncio.gather(consume(plain, probe=True),
                                           consume(hot), consume(from_spec))
        return (plain, hot, from_spec), results, mid_stats

    clients, results, mid_stats = asyncio.run(main())
    plain, hot, from_spec = clients
    assert plain.group_id == hot.group_id == from_spec.group_id
    (group,) = mid_stats["groups"]
    assert group["members"] == 3 and group["fleet_size"] == 3
    assert group["config_groups"] == 2  # default build vs 7 K overtemp

    assert_traces_equal(results[0],
                        standalone(short, n_monitors=1, seed=11),
                        ticks=len(results[0]))
    with Session(n_monitors=1, seed=12, overtemperature_k=7.0,
                 fast_calibration=True) as session:
        session.calibrate()
        hot_ref = session.run(short)
    assert_traces_equal(results[1], hot_ref, ticks=len(results[1]))
    assert_traces_equal(results[2], standalone_spec(short, spec),
                        ticks=len(results[2]))


def test_mixed_cohort_detach_preserves_survivor_bits():
    short = staircase([0.0, 60.0], dwell_s=1.0)

    async def main():
        async with FleetService(tick_steps=400) as service:
            survivor = await service.attach(short, n_monitors=1, seed=21,
                                            fast_calibration=True)
            leaver = await service.attach(short, n_monitors=1, seed=22,
                                          overtemperature_k=7.0,
                                          fast_calibration=True)
            assert survivor.group_id == leaver.group_id
            ticks = 0
            async for _ in survivor.snapshots():
                ticks += 1
                if ticks == 1:
                    await leaver.detach()
            return await survivor.result()

    result = asyncio.run(main())
    assert_traces_equal(result, standalone(short, n_monitors=1, seed=21),
                        ticks=len(result))


@pytest.mark.durability
def test_crash_recovery_resumes_cohort_bit_identical(tmp_path):
    """A checkpointing service dies mid-run; recovery finishes the run.

    With ``checkpoint_dir=`` the service writes a consistent
    (engine, member-windows) checkpoint after every non-final tick.
    Stopping the service with the cohort still live stands in for a
    process death — the checkpoint stays behind — and
    ``recover_cohorts``/``resume`` must finish each client's run
    bit-identical to never having died.
    """
    from repro.service import recover_cohorts

    profile = staircase([0.0, 60.0, 140.0], dwell_s=0.5)  # 1500 steps

    async def main():
        async with FleetService(tick_steps=400, max_pending=2,
                                checkpoint_dir=tmp_path) as service:
            a = await service.attach(profile, n_monitors=2, seed=101,
                                     fast_calibration=True)
            b = await service.attach(profile, n_monitors=1, seed=202,
                                     fast_calibration=True)
            # nobody consumes: the cohort stalls two ticks in, leaving a
            # checkpoint pairing the engine with both members' windows
            # at the 800-step cut
            await wait_until(lambda: b.done_steps >= 800)
            return a.client_id, b.client_id
        # __aexit__ stops the loop without discarding live cohorts

    id_a, id_b = asyncio.run(main())
    ckpt = tmp_path / "cohort-1.ckpt"
    assert ckpt.exists()

    (cohort,) = recover_cohorts(tmp_path)
    assert cohort.group_id == 1
    assert cohort.done == 800 and cohort.total_steps == 1500
    assert cohort.clients == [id_a, id_b]
    results = cohort.resume()
    assert_traces_equal(results[id_a],
                        standalone(profile, n_monitors=2, seed=101))
    assert_traces_equal(results[id_b],
                        standalone(profile, n_monitors=1, seed=202))
    assert not ckpt.exists()  # consumed on successful resume
    assert recover_cohorts(tmp_path) == []


def test_attach_fleet_conflicts_are_refused():
    from repro.runtime import FleetSpec

    spec = FleetSpec.homogeneous(1, seed=5, fast_calibration=True)

    async def main():
        async with FleetService() as service:
            with pytest.raises(ConfigurationError):
                await service.attach(hold(50.0, 0.5), fleet=spec,
                                     n_monitors=2)
            with pytest.raises(ConfigurationError):
                await service.attach(hold(50.0, 0.5), fleet=spec, seed=9)
            return service.stats()

    stats = asyncio.run(main())
    assert stats["clients"] == 0  # failed attaches leave nothing behind


# -- tick-loop instrumentation (the live observability plane) -----------------


def test_tick_loop_instruments_registry_and_health_surface():
    """The tick loop feeds the registry; stats()/health() expose it.

    Asserted mid-run (stalled under backpressure, so the numbers are
    frozen): the ``service.tick.wall_s`` histogram, the per-cohort and
    global queue-depth gauges, the ``service.backpressure.stalls``
    counter, per-cohort ``queue_depth`` in stats, and the fused
    health-score surface on both the service and the client.
    """
    from repro import observability as obs
    from repro.observability import MetricsRegistry

    old_registry = obs.get_registry()
    obs.set_registry(MetricsRegistry(enabled=True))
    try:
        async def main():
            async with FleetService(tick_steps=500,
                                    max_pending=2) as service:
                client = await service.attach(PROFILE, n_monitors=2, seed=5,
                                              fast_calibration=True)
                await wait_until(
                    lambda: client.stream_depth == 2 and
                    service.stats()["backpressure_stalls"] > 0)
                mid_stats = service.stats()
                mid_health = service.health()
                client_health = client.health()
                async for _ in client.snapshots():
                    pass
                await client.result()
                final_stats = service.stats()
            return mid_stats, mid_health, client_health, final_stats

        mid_stats, mid_health, client_health, final_stats = \
            asyncio.run(main())
    finally:
        obs.set_registry(old_registry)

    gid = mid_stats["groups"][0]["group_id"]
    metrics = mid_stats["metrics"]
    # satellite instruments: tick wall-time histogram, queue gauges, stalls
    assert metrics["service.tick.wall_s"]["count"] >= 2
    assert metrics["service.tick.wall_s"]["sum"] > 0.0
    assert metrics["service.backpressure.stalls"]["value"] > 0
    assert metrics[f"service.group.{gid}.queue_depth"]["value"] == 2
    assert metrics["service.queue.depth"]["value"] == 2
    assert "service.health.worst" in metrics
    # stats rows carry the per-cohort queue depth directly
    assert mid_stats["groups"][0]["queue_depth"] == 2

    # the /health surface mid-run: live, uncongested, scored rigs
    assert mid_health["status"] == "ok" and mid_health["running"]
    assert mid_health["backpressure"]["stalls"] > 0
    assert mid_health["since_last_tick_s"] >= 0.0
    assert [r["rig"] for r in mid_health["worst_rigs"]] in \
        ([0, 1], [1, 0])  # sorted by score, 2 rigs attached
    assert all(0.0 <= r["score"] <= 1.0 for r in mid_health["worst_rigs"])

    # the client mirrors its own rig reports
    assert [r["rig"] for r in client_health] == [0, 1]
    assert all(r["windows"] >= 1 for r in client_health)

    # cohort completion retires the per-cohort gauge (bounded cardinality)
    assert f"service.group.{gid}.queue_depth" not in final_stats["metrics"]
    assert "service.tick.wall_s" in final_stats["metrics"]


def test_health_scoring_can_be_disabled():
    from repro import observability as obs

    assert not obs.get_registry().enabled  # scoring must not need metrics

    async def main():
        async with FleetService(tick_steps=1500,
                                health_scores=False) as service:
            client = await service.attach(hold(60.0, 1.5), seed=3,
                                          fast_calibration=True)
            await client.result()
            return client.health(), service.health()

    client_health, service_health = asyncio.run(main())
    assert client_health == []  # no trackers were ever created
    assert service_health["worst_rigs"] == []
    assert service_health["status"] == "ok"
