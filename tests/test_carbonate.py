"""Unit tests for the carbonate scaling chemistry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.physics.carbonate import (
    TUSCAN_TAP_WATER,
    WaterChemistry,
    langelier_index,
    saturation_ratio,
    scaling_driving_force,
)


def test_chemistry_validation():
    with pytest.raises(ConfigurationError):
        WaterChemistry(calcium_mg_per_l=-1.0)
    with pytest.raises(ConfigurationError):
        WaterChemistry(ph=2.0)
    with pytest.raises(ConfigurationError):
        WaterChemistry(tds_mg_per_l=0.0)


def test_lsi_rises_with_temperature():
    """Inverse solubility: the heated wall is more supersaturated."""
    cold = float(langelier_index(TUSCAN_TAP_WATER, 288.15))
    hot = float(langelier_index(TUSCAN_TAP_WATER, 318.15))
    assert hot > cold


def test_lsi_rises_with_hardness():
    soft = WaterChemistry(calcium_mg_per_l=40.0, alkalinity_mg_per_l=50.0,
                          ph=7.4, tds_mg_per_l=150.0)
    assert float(langelier_index(TUSCAN_TAP_WATER, 298.15)) > \
        float(langelier_index(soft, 298.15))


def test_saturation_ratio_is_power_of_lsi():
    lsi = float(langelier_index(TUSCAN_TAP_WATER, 298.15))
    assert float(saturation_ratio(TUSCAN_TAP_WATER, 298.15)) == pytest.approx(10**lsi)


def test_driving_force_zero_for_undersaturated_water():
    aggressive = WaterChemistry(calcium_mg_per_l=20.0, alkalinity_mg_per_l=30.0,
                                ph=6.5, tds_mg_per_l=100.0)
    force = float(scaling_driving_force(aggressive, 300.0, 288.15))
    assert force == 0.0


def test_driving_force_grows_superlinearly_with_overtemperature():
    bulk = 288.15
    f5 = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk + 5.0, bulk))
    f30 = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk + 30.0, bulk))
    assert f30 > 6.0 * f5  # disproportionate: the paper's hot-wall mechanism


def test_driving_force_zero_at_equal_temperatures_or_small():
    bulk = 288.15
    force_eq = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk, bulk))
    force_hot = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk + 20.0, bulk))
    assert force_hot > force_eq


def test_wall_below_bulk_rejected():
    with pytest.raises(ConfigurationError):
        scaling_driving_force(TUSCAN_TAP_WATER, 280.0, 290.0)


def test_temperature_range_guard():
    with pytest.raises(ConfigurationError):
        langelier_index(TUSCAN_TAP_WATER, 250.0)


@settings(max_examples=25)
@given(st.floats(min_value=0.0, max_value=40.0))
def test_driving_force_monotone_in_overtemperature(d_t):
    bulk = 288.15
    f_lo = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk + d_t, bulk))
    f_hi = float(scaling_driving_force(TUSCAN_TAP_WATER, bulk + d_t + 5.0, bulk))
    assert f_hi >= f_lo
    assert np.isfinite(f_hi)
