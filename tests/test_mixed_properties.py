"""Property-based invariants for the ragged mixed-fleet merge.

The MixedEngine's correctness reduces to one algebraic fact: for any
partition of ``range(n)`` into groups, slicing a fleet result into the
group blocks and re-merging them with the permutation-aware
``RunResult.concat(axis="fleet", indices=...)`` is the identity.  These
properties pin that algebra on synthetic results, independent of the
physics, so a merge regression fails here in milliseconds instead of
surfacing as a parity diff after a full engine run.

Hypothesis is an optional dev dependency: the module skips without it.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.runtime import RunResult  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)


def _random_result(rng, n, m, t0=0.0):
    return RunResult(
        time_s=t0 + np.arange(m, dtype=float) * 0.02,
        **{name: rng.standard_normal((n, m))
           for name in RunResult.STACKED_FIELDS})


def _rows(result, positions):
    """The sub-result holding ``positions`` of ``result``, in order."""
    return RunResult(
        time_s=np.asarray(result.time_s).copy(),
        **{name: np.asarray(getattr(result, name))[list(positions)].copy()
           for name in RunResult.STACKED_FIELDS})


@st.composite
def _partition_case(draw):
    """A fleet size, a random partition of its rows, and a time length."""
    n = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=1, max_value=n))
    assignment = [draw(st.integers(min_value=0, max_value=k - 1))
                  for _ in range(n)]
    groups = [[i for i, g in enumerate(assignment) if g == which]
              for which in range(k)]
    groups = [g for g in groups if g]  # drop empty groups
    m = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, groups, m, seed


@SETTINGS
@given(_partition_case())
def test_partition_then_interleave_is_identity(case):
    n, groups, m, seed = case
    rng = np.random.default_rng(seed)
    whole = _random_result(rng, n, m)
    blocks = [_rows(whole, g) for g in groups]
    merged = RunResult.concat(blocks, axis="fleet", indices=groups)
    assert merged.n_monitors == n
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.asarray(getattr(merged, name)).tobytes() == \
            np.asarray(getattr(whole, name)).tobytes(), name
    # Provenance: row i came from its group, at its in-group rank.
    for pos, (which, rank) in enumerate(merged.provenance()):
        assert groups[which][rank] == pos


@SETTINGS
@given(_partition_case(), st.integers(min_value=1, max_value=4))
def test_time_then_fleet_concat_commute(case, windows):
    """Windowed group blocks merge the same whether time- or
    fleet-concatenated first — the run_campaign stitching order."""
    n, groups, m, seed = case
    rng = np.random.default_rng(seed)
    wins = [_random_result(rng, n, m, t0=w * m * 0.02)
            for w in range(windows)]
    whole = RunResult.concat(wins, axis="time") if windows > 1 else wins[0]
    time_first = RunResult.concat(
        [RunResult.concat([_rows(w, g) for w in wins], axis="time")
         if windows > 1 else _rows(wins[0], g) for g in groups],
        axis="fleet", indices=groups)
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.asarray(getattr(time_first, name)).tobytes() == \
            np.asarray(getattr(whole, name)).tobytes(), name


@SETTINGS
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_indices_must_be_an_exact_permutation_cover(seed):
    rng = np.random.default_rng(seed)
    a = _random_result(rng, 2, 3)
    b = _random_result(rng, 1, 3)
    with pytest.raises(ConfigurationError):  # hole: row 3 never filled
        RunResult.concat([a, b], axis="fleet", indices=[[0, 1], [3]])
    with pytest.raises(ConfigurationError):  # duplicate row
        RunResult.concat([a, b], axis="fleet", indices=[[0, 1], [1]])
    with pytest.raises(ConfigurationError):  # block/indices shape clash
        RunResult.concat([a, b], axis="fleet", indices=[[0], [1, 2]])


def test_unknown_axis_refused():
    rng = np.random.default_rng(0)
    a = _random_result(rng, 1, 3)
    with pytest.raises(ConfigurationError):
        RunResult.concat([a], axis="diagonal")
