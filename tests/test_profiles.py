"""Unit tests for the line setpoint profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.station.profiles import (
    Profile,
    Segment,
    bidirectional_staircase,
    hold,
    pressure_peaks,
    ramp,
    staircase,
    step,
)


def test_segment_validation():
    with pytest.raises(ConfigurationError):
        Segment(duration_s=0.0, speed_mps=1.0)
    with pytest.raises(ConfigurationError):
        Segment(duration_s=1.0, speed_mps=1.0, pressure_pa=-1.0)


def test_empty_profile_rejected():
    with pytest.raises(ConfigurationError):
        Profile([]).setpoints(0.0)


def test_hold_units():
    p = hold(speed_cmps=120.0, duration_s=10.0, pressure_bar=2.0,
             temperature_c=15.0)
    v, pr, t = p.setpoints(5.0)
    assert v == pytest.approx(1.2)
    assert pr == pytest.approx(2e5)
    assert t == pytest.approx(288.15)
    assert p.duration_s == 10.0


def test_staircase_levels_and_duration():
    p = staircase([0.0, 100.0, 250.0], dwell_s=5.0)
    assert p.duration_s == 15.0
    assert p.setpoints(2.0)[0] == 0.0
    assert p.setpoints(7.0)[0] == pytest.approx(1.0)
    assert p.setpoints(12.0)[0] == pytest.approx(2.5)


def test_profile_holds_last_value_beyond_end():
    p = staircase([50.0, 100.0], dwell_s=1.0)
    assert p.setpoints(99.0)[0] == pytest.approx(1.0)


def test_negative_time_rejected():
    with pytest.raises(ConfigurationError):
        hold(10.0, 1.0).setpoints(-1.0)


def test_ramp_interpolates():
    p = ramp(0.0, 250.0, duration_s=10.0)
    v_mid = p.setpoints(0.001 + 5.0)[0]
    assert v_mid == pytest.approx(1.25, abs=0.01)
    assert p.setpoints(10.001)[0] == pytest.approx(2.5)


def test_step_profile():
    p = step(from_cmps=20.0, to_cmps=200.0, pre_s=2.0, post_s=3.0)
    assert p.setpoints(1.0)[0] == pytest.approx(0.2)
    assert p.setpoints(2.5)[0] == pytest.approx(2.0)
    assert p.duration_s == 5.0


def test_bidirectional_staircase_signs():
    p = bidirectional_staircase([50.0, 100.0], dwell_s=1.0)
    assert p.setpoints(0.5)[0] > 0
    assert p.setpoints(2.5)[0] < 0
    assert p.duration_s == 4.0


def test_bidirectional_requires_levels():
    with pytest.raises(ConfigurationError):
        bidirectional_staircase([], dwell_s=1.0)


def test_pressure_peaks_shape():
    p = pressure_peaks(speed_cmps=100.0, base_bar=2.0, peak_bar=7.0,
                       dwell_s=4.0, peaks=2)
    # Base segment then peak segment.
    assert p.setpoints(1.0)[1] == pytest.approx(2e5)
    assert p.setpoints(4.5)[1] == pytest.approx(7e5)
    # Speed constant throughout.
    assert p.setpoints(4.5)[0] == pytest.approx(1.0)


def test_append_rebuilds_index():
    p = hold(10.0, 1.0)
    p.append(Segment(duration_s=1.0, speed_mps=2.0))
    assert p.duration_s == 2.0
    assert p.setpoints(1.5)[0] == 2.0
