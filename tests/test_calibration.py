"""Unit tests for calibration procedure and object."""

import numpy as np
import pytest

from repro.conditioning.calibration import CalibrationProcedure, FlowCalibration
from repro.errors import CalibrationError
from repro.physics.kings_law import KingsLaw

LAW = KingsLaw(coeff_a=1.2e-3, coeff_b=4.4e-3, exponent=0.5)


def make_calibration(**kw):
    defaults = dict(law=LAW, overtemperature_k=5.0)
    defaults.update(kw)
    return FlowCalibration(**defaults)


def test_speed_inversion_roundtrip():
    cal = make_calibration()
    for v in [0.0, 0.1, 1.0, 2.5]:
        g = cal.conductance_from_speed(v)
        assert cal.speed_from_conductance(g) == pytest.approx(v, abs=1e-9)


def test_speed_clips_below_zero_flow():
    cal = make_calibration()
    assert cal.speed_from_conductance(LAW.coeff_a * 0.5) == 0.0


def test_serialisation_roundtrip():
    cal = make_calibration(direction_offset=0.01, rms_residual_mps=0.02)
    restored = FlowCalibration.from_dict(cal.to_dict())
    assert restored.law.coeff_a == cal.law.coeff_a
    assert restored.law.coeff_b == cal.law.coeff_b
    assert restored.direction_offset == cal.direction_offset
    assert restored.overtemperature_k == cal.overtemperature_k


def test_deserialisation_missing_field():
    with pytest.raises(CalibrationError):
        FlowCalibration.from_dict({"coeff_a": 1.0})


def test_procedure_requires_enough_points():
    proc = CalibrationProcedure(overtemperature_k=5.0)
    proc.add_point(0.5, 3e-3)
    with pytest.raises(CalibrationError):
        proc.fit()


def test_procedure_rejects_bad_point():
    proc = CalibrationProcedure(overtemperature_k=5.0)
    with pytest.raises(CalibrationError):
        proc.add_point(1.0, -1e-3)


def test_procedure_fits_synthetic_campaign():
    proc = CalibrationProcedure(overtemperature_k=5.0)
    speeds = [0.0, 0.2, 0.5, 1.0, 1.5, 2.0, 2.5]
    rng = np.random.default_rng(0)
    for v in speeds:
        g = float(LAW.conductance(v)) * (1.0 + 1e-3 * rng.normal())
        proc.add_point(v, g, heater_asymmetry=0.01 if v == 0.0 else 0.02)
    cal = proc.fit(exponent=0.5)
    assert cal.law.coeff_a == pytest.approx(LAW.coeff_a, rel=0.05)
    assert cal.law.coeff_b == pytest.approx(LAW.coeff_b, rel=0.02)
    assert cal.rms_residual_mps < 0.02
    # Direction offset learned from the lowest-speed quartile.
    assert cal.direction_offset == pytest.approx(0.01, abs=0.011)


def test_procedure_residual_reported():
    proc = CalibrationProcedure(overtemperature_k=5.0)
    rng = np.random.default_rng(1)
    for v in np.linspace(0.0, 2.5, 8):
        g = float(LAW.conductance(v)) * (1.0 + 0.02 * rng.normal())
        proc.add_point(float(v), g)
    cal = proc.fit(exponent=0.5)
    assert cal.rms_residual_mps > 0.0
