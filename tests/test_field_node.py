"""Integration tests for the deployed field node."""

import pytest

from repro.conditioning.eeprom_image import store_calibration
from repro.conditioning.field_node import FieldNode, FieldNodeConfig
from repro.errors import CalibrationError, ConfigurationError
from repro.isif.eeprom import Eeprom
from repro.isif.power import BatteryPack
from repro.isif.uart import Parity, UartLink
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

COND = FlowConditions(speed_mps=1.0)


@pytest.fixture(scope="module")
def provisioned_eeprom(shared_setup):
    """EEPROM provisioned with a real calibration at the factory."""
    e = Eeprom()
    store_calibration(e, shared_setup.calibration)
    return e


def fast_config():
    from repro.conditioning.monitor import MonitorConfig
    # A 1 Hz output filter settles within one short burst — the 0.1 Hz
    # default needs many bursts of accumulated on-time.
    return FieldNodeConfig(burst_s=0.5, period_s=60.0,
                           monitor=MonitorConfig(use_pulsed_drive=False,
                                                 output_bandwidth_hz=1.0))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FieldNodeConfig(burst_s=10.0, period_s=5.0)


def test_boot_from_provisioned_eeprom(provisioned_eeprom):
    node = FieldNode(MAFSensor(MAFConfig(seed=10)), provisioned_eeprom,
                     config=fast_config())
    assert not node.booted
    node.boot()
    assert node.booted


def test_unprovisioned_node_refuses_to_run():
    node = FieldNode(MAFSensor(MAFConfig(seed=11)), Eeprom(),
                     config=fast_config())
    with pytest.raises(CalibrationError):
        node.boot()
    with pytest.raises(CalibrationError):
        node.run_cycle(COND)


def test_cycle_measures_and_transmits(provisioned_eeprom):
    node = FieldNode(MAFSensor(MAFConfig(seed=12)), provisioned_eeprom,
                     config=fast_config())
    node.boot()
    report = None
    for _ in range(4):  # let filters converge over a few bursts
        report = node.run_cycle(COND)
    assert report.frame is not None
    assert report.frame.flow_mps == pytest.approx(1.0, rel=0.35)
    assert report.charge_used_ah > 0.0
    assert node.watchdog.reset_count == 0


def test_noisy_uplink_drops_frames_but_node_keeps_running(provisioned_eeprom):
    node = FieldNode(MAFSensor(MAFConfig(seed=13)), provisioned_eeprom,
                     link=UartLink(parity=Parity.EVEN, bit_error_rate=0.02,
                                   seed=3),
                     config=fast_config())
    node.boot()
    outcomes = [node.run_cycle(COND).frame for _ in range(15)]
    assert any(f is None for f in outcomes)       # noise drops some
    assert any(f is not None for f in outcomes)   # but not all
    assert node.telemetry.drop_rate > 0.0


def test_battery_depletes_and_node_goes_dark(provisioned_eeprom):
    tiny_pack = BatteryPack(cells=4, cell_capacity_ah=1e-5,
                            usable_fraction=1.0)
    node = FieldNode(MAFSensor(MAFConfig(seed=14)), provisioned_eeprom,
                     config=fast_config(), battery=tiny_pack)
    node.boot()
    with pytest.raises(ConfigurationError):
        for _ in range(100):
            node.run_cycle(COND)
    assert node.depleted


def test_totaliser_accumulates_across_cycles(provisioned_eeprom):
    """Sample-and-hold billing: N cycles at steady 1 m/s total N periods
    of volume, within the measurement accuracy."""
    import numpy as np
    node = FieldNode(MAFSensor(MAFConfig(seed=16)), provisioned_eeprom,
                     config=fast_config())
    node.boot()
    for _ in range(6):
        node.run_cycle(COND)
    area = np.pi * 0.025**2
    expected = 1.0 * area * 6 * node.config.period_s
    assert node.totaliser.net_m3 == pytest.approx(expected, rel=0.25)
    assert node.totaliser.reverse_m3 == 0.0


def test_projected_autonomy_matches_paper_claim(provisioned_eeprom):
    node = FieldNode(MAFSensor(MAFConfig(seed=15)), provisioned_eeprom,
                     config=FieldNodeConfig(burst_s=2.0, period_s=900.0))
    assert node.projected_autonomy_years() > 1.0
