"""Incremental engine contract: advance slicing, ragged drop, stitching.

The streaming service stands on two :class:`BatchEngine` properties
proved here at the engine level:

- advancing a run in arbitrary step slices (including windows shorter
  than the decimation stride and boundaries that split pre-draw chunks)
  is *bit-identical* to one uninterrupted run;
- dropping rigs between advances leaves every surviving rig's traces
  bit-identical to a fleet that never contained the dropped ones.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import RunResult, Session
from repro.runtime.batch import BatchEngine
from repro.station.profiles import staircase

PROFILE = staircase([20.0, 60.0, 40.0], dwell_s=1.0)
STEPS = int(round(PROFILE.duration_s / 1e-3))


def fresh_rigs(seed=7, n=3):
    with Session(n_monitors=n, seed=seed, fast_calibration=True) as s:
        s.calibrate()
        return [h.rig for h in s.monitors]


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted 5-monitor run (rows 0-2 match a 3-fleet)."""
    return BatchEngine(fresh_rigs(n=5), chunk_size=1024).run(
        PROFILE, record_every_n=20)


def assert_traces_equal(a, b, rows=None):
    assert np.array_equal(a.time_s, b.time_s)
    for name in RunResult.STACKED_FIELDS:
        left = getattr(a, name)
        right = getattr(b, name)
        if rows is not None:
            right = right[rows]
        assert np.array_equal(left, right), name


def test_advance_slices_bit_identical(reference):
    """Arbitrary advance windows stitch into the uninterrupted run."""
    engine = BatchEngine(fresh_rigs(n=5), chunk_size=1024)
    cuts = [777, 783, 1801, 2500, STEPS]  # mid-chunk + zero-record window
    parts, prev = [], 0
    for cut in cuts:
        parts.append(engine.advance(PROFILE, cut - prev, record_every_n=20))
        prev = cut
    assert engine.offset == STEPS
    assert len(parts[1]) == 1  # 6-step window still lands one tick
    stitched = RunResult.concat_time(parts)
    assert_traces_equal(stitched, reference)


def test_advance_zero_record_window_is_well_shaped():
    """A window shorter than the stride records nothing but advances."""
    engine = BatchEngine(fresh_rigs(n=2), chunk_size=256)
    window = engine.advance(PROFILE, 5, record_every_n=20)
    # step 0 records (0 % 20 == 0); the next 5 steps do not
    assert len(window) == 1
    empty = engine.advance(PROFILE, 10, record_every_n=20)
    assert len(empty) == 0
    assert empty.n_monitors == 2
    assert empty.direction.dtype == np.int64
    assert engine.offset == 15
    summary = empty.summary()
    assert np.isnan(summary["run.measured_mps"]["mean"])


def test_drop_preserves_survivor_bits(reference):
    """Dropping rigs mid-run leaves survivors bit-identical."""
    engine = BatchEngine(fresh_rigs(n=5), chunk_size=1024)
    head = engine.advance(PROFILE, 1500, record_every_n=20)
    engine.drop([1, 3])
    tail = engine.advance(PROFILE, STEPS - 1500, record_every_n=20)
    m = len(head)
    assert_traces_equal(head, RunResult(
        time_s=reference.time_s[:m],
        **{f: getattr(reference, f)[:, :m]
           for f in RunResult.STACKED_FIELDS}))
    keep = [0, 2, 4]
    assert np.array_equal(tail.time_s, reference.time_s[m:])
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(getattr(tail, name),
                              getattr(reference, name)[keep][:, m:]), name


def test_shared_fleet_rows_match_smaller_fleet(reference):
    """A fleet's leading rows are bit-identical to the smaller fleet.

    (The seed-spawn prefix property the service's cohort multiplexing
    relies on: extra rigs in the engine never perturb other rows.)
    """
    small = BatchEngine(fresh_rigs(n=3), chunk_size=1024).run(
        PROFILE, record_every_n=20)
    assert_traces_equal(small, reference, rows=slice(0, 3))


def test_drop_validation_and_exhaustion():
    engine = BatchEngine(fresh_rigs(n=2), chunk_size=256)
    with pytest.raises(ConfigurationError):
        engine.drop([2])
    with pytest.raises(ConfigurationError):
        engine.drop([0, 0])
    engine.drop([])  # no-op
    engine.drop([0, 1])
    with pytest.raises(ConfigurationError):
        engine.advance(PROFILE, 10)


def test_advance_argument_validation():
    engine = BatchEngine(fresh_rigs(n=1), chunk_size=256)
    with pytest.raises(ConfigurationError):
        engine.advance(PROFILE, 0)
    with pytest.raises(ConfigurationError):
        engine.advance(PROFILE, 10, record_every_n=0)


def test_concat_time_validation():
    engine = BatchEngine(fresh_rigs(n=2), chunk_size=256)
    a = engine.advance(PROFILE, 100, record_every_n=20)
    b = engine.advance(PROFILE, 100, record_every_n=20)
    with pytest.raises(ConfigurationError):
        RunResult.concat_time([])
    with pytest.raises(ConfigurationError):
        RunResult.concat_time([b, a])  # out of order
    other = BatchEngine(fresh_rigs(n=1), chunk_size=256).advance(
        PROFILE, 100, record_every_n=20)
    with pytest.raises(ConfigurationError):
        RunResult.concat_time([a, other])  # fleet-size mismatch
    both = RunResult.concat_time([a, b])
    assert len(both) == len(a) + len(b)
