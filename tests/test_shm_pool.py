"""Pool lifecycle and composition tests for the shm backend.

What the persistent pool promises beyond parity (covered in
``test_shm_parity``): workers are spawned once and reused across
windows and runs; teardown is deterministic and idempotent
(``close()`` / context managers / ``Session.close`` /
``FleetService.stop``); infrastructure failure during ``advance``
raises :class:`PoolWorkerError` instead of silently degrading; and the
backend composes with ``drop``, ``run_durable`` checkpoint/resume and
the fleet service without changing a bit.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import (BatchEngine, MixedEngine, PoolWorkerError,
                           RunResult, Session, ShardedEngine, ShmPool,
                           get_pool, resolve_backend, run_durable,
                           shutdown_pool, spawn_monitor_seeds)
from repro.runtime.parallel import FAULT_ENV
from repro.runtime.shm import existing_pool
from repro.service import FleetService
from repro.station.profiles import hold, staircase
from repro.station.scenarios import build_calibrated_monitor

pytestmark = pytest.mark.parallel

SEED = 777
PROFILE = hold(60.0, 1.5)


def _fleet(n, seed=SEED):
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(seed, n)]


def _assert_bit_identical(a, b):
    assert np.array_equal(np.asarray(a.time_s), np.asarray(b.time_s))
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(a, name)),
                              np.asarray(getattr(b, name))), name


@pytest.fixture()
def fresh_pool():
    """Fork the pool under the current env; tear it down afterwards."""
    shutdown_pool()
    yield
    shutdown_pool()


# -- pool lifecycle ----------------------------------------------------------


def test_pool_workers_persist_across_windows_and_runs(fresh_pool):
    with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
        engine.advance(PROFILE, 400)
        pool = existing_pool()
        assert pool is not None and pool.size == 2
        pids = [pool.call(i, ("ping",))[1] for i in range(2)]
        engine.advance(PROFILE, 400)
    # a second engine on the same pool reuses the same processes
    with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
        engine.run(PROFILE)
    assert existing_pool() is pool
    assert [pool.call(i, ("ping",))[1] for i in range(2)] == pids


def test_pool_close_is_idempotent_and_context_managed(fresh_pool):
    with ShmPool() as pool:
        pool.ensure(2)
        assert pool.size == 2 and not pool.closed
    assert pool.closed
    pool.close()  # second close is a no-op
    with pytest.raises(ConfigurationError):
        pool.ensure(1)


def test_global_pool_recreated_after_shutdown(fresh_pool):
    first = get_pool(1)
    shutdown_pool()
    assert first.closed and existing_pool() is None
    second = get_pool(1)
    assert second is not first and not second.closed


def test_resolve_backend_validates():
    assert resolve_backend("spawn") == "spawn"
    assert resolve_backend("shm") == "shm"
    with pytest.raises(ConfigurationError) as exc:
        resolve_backend("threads")
    assert exc.value.reason == "backend"


def test_engine_close_is_idempotent_and_refuses_reuse():
    engine = ShardedEngine(_fleet(2), workers=2, backend="shm")
    engine.advance(PROFILE, 200)
    engine.close()
    engine.close()  # idempotent
    with pytest.raises(ConfigurationError):
        engine.advance(PROFILE, 200)
    with pytest.raises(ConfigurationError):
        engine.run(PROFILE)


# -- failure semantics -------------------------------------------------------


def test_advance_worker_crash_raises_pool_error(fresh_pool, monkeypatch):
    """``advance`` holds live state in the pool: a dead worker is an
    error (durable runs recover via checkpoint resume), never a silent
    partial result."""
    monkeypatch.setenv(FAULT_ENV, "crash:0")
    with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
        with pytest.raises(PoolWorkerError):
            engine.advance(PROFILE, 400)


def test_run_fallback_counts_shards(fresh_pool, monkeypatch):
    """``run`` owns parent-side rigs, so a dead worker degrades that
    shard to in-process serial and the run still completes."""
    from repro import observability as obs
    from repro.observability import MetricsRegistry

    monkeypatch.setenv(FAULT_ENV, "crash:1")
    reference = BatchEngine(_fleet(2)).run(PROFILE)
    old = obs.get_registry()
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    try:
        with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
            result = engine.run(PROFILE)
        fallbacks = registry.counter("shard.fallbacks").value
    finally:
        obs.set_registry(old)
    _assert_bit_identical(result, reference)
    assert fallbacks == 1


# -- composition -------------------------------------------------------------


def test_shm_drop_preserves_survivor_bits():
    reference = BatchEngine(_fleet(5))
    head_ref = reference.advance(PROFILE, 700, record_every_n=20)
    reference.drop([1, 3])
    tail_ref = reference.advance(PROFILE, 800, record_every_n=20)

    with ShardedEngine(_fleet(5), workers=2, backend="shm") as engine:
        head = engine.advance(PROFILE, 700, record_every_n=20)
        engine.drop([1, 3])
        tail = engine.advance(PROFILE, 800, record_every_n=20)
    _assert_bit_identical(head, head_ref)
    _assert_bit_identical(tail, tail_ref)


def test_run_durable_shm_crash_resume_bit_identical(tmp_path, monkeypatch):
    """Kill a shm durable run after two windows; resume equals both the
    uninterrupted shm run and the serial reference."""
    profile = staircase([0.0, 70.0], dwell_s=0.25)  # 500 steps
    serial = run_durable(_fleet(2), profile,
                         checkpoint_path=tmp_path / "serial.ckpt",
                         record_every_n=10, window_steps=180)
    ref = run_durable(_fleet(2), profile,
                      checkpoint_path=tmp_path / "ref.ckpt",
                      record_every_n=10, window_steps=180,
                      workers=2, backend="shm")
    _assert_bit_identical(ref, serial)

    calls = {"n": 0}
    real_advance = MixedEngine.advance

    def dying_advance(self, *args, **kwargs):
        if calls["n"] == 2:
            raise KeyboardInterrupt("simulated process death")
        calls["n"] += 1
        return real_advance(self, *args, **kwargs)

    monkeypatch.setattr(MixedEngine, "advance", dying_advance)
    with pytest.raises(KeyboardInterrupt):
        run_durable(_fleet(2), profile,
                    checkpoint_path=tmp_path / "run.ckpt",
                    record_every_n=10, window_steps=180,
                    workers=2, backend="shm")
    monkeypatch.setattr(MixedEngine, "advance", real_advance)
    assert (tmp_path / "run.ckpt").exists()

    got = run_durable(_fleet(2), profile,
                      checkpoint_path=tmp_path / "run.ckpt",
                      record_every_n=10, window_steps=180,
                      workers=2, backend="shm", resume=True)
    _assert_bit_identical(got, ref)
    assert not (tmp_path / "run.ckpt").exists()


def test_fleet_service_shm_backend_parity():
    """Service cohort ticks ride the pool and stay bit-exact."""

    async def main():
        async with FleetService(tick_steps=700, workers=2,
                                backend="shm") as service:
            session = await service.attach(PROFILE, n_monitors=2, seed=11,
                                           fast_calibration=True)
            async for _ in session.snapshots():
                pass
            return await session.result()

    result = asyncio.run(main())
    with Session(n_monitors=2, seed=11, fast_calibration=True) as session:
        session.calibrate()
        reference = session.run(PROFILE)
    _assert_bit_identical(result, reference)
    # stop() tears the pool down with the service
    assert existing_pool() is None


def test_session_close_tears_down_pool(fresh_pool):
    with Session(n_monitors=2, seed=SEED, fast_calibration=True) as session:
        session.calibrate()
        session.run(PROFILE, workers=2, backend="shm")
        assert existing_pool() is not None
    assert existing_pool() is None


def test_facade_run_accepts_backend():
    """``repro.run`` forwards ``backend=`` to the session run, not to
    the Session constructor."""
    import repro
    from repro.runtime import FleetSpec

    profile = hold(60.0, 0.5)
    spec = FleetSpec.homogeneous(2, seed=SEED, fast_calibration=True)
    shm = repro.run(profile, fleet=spec, workers=2, backend="shm")
    ref = repro.run(profile, fleet=spec)
    _assert_bit_identical(shm, ref)


def test_pickled_results_own_their_arrays():
    import pickle

    with ShardedEngine(_fleet(2), workers=2, backend="shm") as engine:
        result = engine.run(PROFILE)
    clone = pickle.loads(pickle.dumps(result))
    _assert_bit_identical(clone, result)
    assert getattr(clone, "_shm", None) is None
