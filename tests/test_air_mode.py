"""Tests for air-medium operation (the die's original automotive duty)."""

import numpy as np
import pytest

from repro.conditioning.cta import CTAConfig, CTAController
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.physics import air
from repro.physics.convection import WireGeometry, derive_kings_coefficients, film_conductance
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

AIR_COND = FlowConditions(speed_mps=5.0, temperature_k=293.15,
                          pressure_pa=0.0)


def test_air_property_values():
    """Spot-check against standard 300 K air tables."""
    assert float(air.density(300.0)) == pytest.approx(1.177, rel=0.01)
    assert float(air.dynamic_viscosity(300.0)) == pytest.approx(1.846e-5, rel=0.01)
    assert float(air.thermal_conductivity(300.0)) == pytest.approx(0.0263, rel=0.02)
    assert float(air.prandtl_number(300.0)) == pytest.approx(0.707, rel=0.02)


def test_air_range_guard():
    with pytest.raises(ConfigurationError):
        air.density(100.0)
    with pytest.raises(ConfigurationError):
        air.film_properties_scalar(500.0)


def test_air_scalar_matches_vectorised():
    k, nu, pr = air.film_properties_scalar(310.0)
    assert k == pytest.approx(float(air.thermal_conductivity(310.0)))
    assert nu == pytest.approx(float(air.kinematic_viscosity(310.0)))
    assert pr == pytest.approx(float(air.prandtl_number(310.0)))


def test_air_conductance_far_below_water():
    """Water cools ~40x harder than air — the quantitative reason the
    paper reduces the overtemperature in water."""
    g = WireGeometry()
    g_air = float(film_conductance(1.0, g, 303.15, 293.15, medium=air))
    g_water = float(film_conductance(1.0, g, 303.15, 293.15))
    assert 30.0 < g_water / g_air < 300.0


def test_air_kings_coefficients_physical():
    a, b, n = derive_kings_coefficients(WireGeometry(), 303.15, medium=air)
    assert n == 0.5
    assert 0.0 < a < 1e-3   # tens of µW/K class
    assert 0.0 < b < 1e-3


def test_invalid_medium_rejected():
    with pytest.raises(ConfigurationError):
        MAFConfig(medium="oil")


def test_air_mode_loop_regulates_at_automotive_overtemperature():
    """The same die + platform + firmware close the loop in air at the
    classic MAF ΔT of 40 K (impossible in water without bubbles)."""
    sensor = MAFSensor(MAFConfig(seed=90, medium="air"))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=90),
                               CTAConfig(overtemperature_k=40.0))
    tel = controller.settle(AIR_COND, 2.0)
    d_t = tel.readout.heater_a_temperature_k - AIR_COND.temperature_k
    assert d_t == pytest.approx(40.0, abs=4.0)
    # No bubbles in a gas, by construction.
    assert tel.readout.bubble_coverage_a == 0.0


def test_air_mode_supply_rises_with_airflow():
    sensor = MAFSensor(MAFConfig(seed=91, medium="air"))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=91),
                               CTAConfig(overtemperature_k=40.0))
    supplies = []
    for v in [1.0, 5.0, 15.0]:
        tel = controller.settle(
            FlowConditions(speed_mps=v, temperature_k=293.15,
                           pressure_pa=0.0), 1.5)
        supplies.append(tel.supply_a_v)
    assert supplies[0] < supplies[1] < supplies[2]


def test_air_mode_power_levels_automotive_class():
    """~40 K in moderate airflow costs a few mW — the automotive MAF
    operating regime, an order below the water drive levels."""
    sensor = MAFSensor(MAFConfig(seed=92, medium="air"))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=92),
                               CTAConfig(overtemperature_k=40.0))
    tel = controller.settle(AIR_COND, 2.0)
    assert 0.5e-3 < tel.readout.heater_a_power_w < 20e-3