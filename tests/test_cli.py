"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cal_file(tmp_path_factory):
    """A real (fast) calibration image produced by the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "cal.json"
    assert main(["calibrate", "--out", str(path), "--fast",
                 "--seed", "5"]) == 0
    return path


def test_selftest_passes(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "SELF-TEST PASS" in out


def test_calibrate_writes_valid_image(cal_file):
    image = json.loads(cal_file.read_text())
    assert image["coeff_a"] > 0.0
    assert image["coeff_b"] > 0.0
    assert 0.3 <= image["exponent"] <= 0.7


def test_measure_against_stored_calibration(cal_file, capsys):
    code = main(["measure", "--cal", str(cal_file),
                 "--speed-cmps", "100", "--duration", "8",
                 "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    measured = float([line for line in out.splitlines()
                      if "measured speed" in line][0].split(":")[1]
                     .replace("cm/s", ""))
    assert measured == pytest.approx(100.0, rel=0.2)


def test_sweep_prints_all_levels(cal_file, capsys):
    code = main(["sweep", "--cal", str(cal_file),
                 "--levels", "20,120", "--dwell", "5", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "20.0" in out
    assert "120.0" in out


def test_sweep_rejects_bad_levels(cal_file, capsys):
    assert main(["sweep", "--cal", str(cal_file),
                 "--levels", "abc"]) == 2
    assert main(["sweep", "--cal", str(cal_file), "--levels", ""]) == 2


def test_measure_missing_calibration_file(tmp_path):
    code = main(["measure", "--cal", str(tmp_path / "nope.json"),
                 "--speed-cmps", "50"])
    assert code == 1


def test_measure_corrupt_calibration(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"coeff_a": 1.0}))
    code = main(["measure", "--cal", str(bad), "--speed-cmps", "50"])
    assert code == 1


def test_record_writes_loadable_archive(tmp_path):
    from repro.station.rig import RigRecord
    out = tmp_path / "traces.npz"
    code = main(["record", "--out", str(out), "--levels", "20,80",
                 "--dwell", "3", "--seed", "5"])
    assert code == 0
    record = RigRecord.load(out)
    assert len(record) > 100
    assert record.true_speed_mps.max() > 0.5


def test_record_rejects_bad_levels(tmp_path):
    assert main(["record", "--out", str(tmp_path / "x.npz"),
                 "--levels", "nope"]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_fleet_serial_writes_archive(tmp_path, capsys):
    import numpy as np

    from repro.runtime import RunResult
    out = tmp_path / "fleet.npz"
    code = main(["fleet", "--n-monitors", "2", "--workers", "1",
                 "--levels", "0,60", "--dwell", "0.5", "--seed", "9",
                 "--out", str(out)])
    assert code == 0
    result = RunResult.load(out)
    assert result.n_monitors == 2
    assert np.isfinite(np.asarray(result.measured_mps)).all()
    assert "2 monitors" in capsys.readouterr().out


@pytest.mark.parallel
def test_fleet_sharded_archive_matches_serial(tmp_path):
    import numpy as np

    from repro.runtime import RunResult
    base = ["fleet", "--n-monitors", "2", "--levels", "0,60",
            "--dwell", "0.5", "--seed", "9"]
    serial_out = tmp_path / "serial.npz"
    sharded_out = tmp_path / "sharded.npz"
    assert main(base + ["--workers", "1", "--out", str(serial_out)]) == 0
    assert main(base + ["--workers", "2", "--out", str(sharded_out)]) == 0
    serial = RunResult.load(serial_out)
    sharded = RunResult.load(sharded_out)
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(sharded, name)),
                              np.asarray(getattr(serial, name))), name


def test_fleet_rejects_bad_knobs():
    assert main(["fleet", "--workers", "0"]) == 2
    assert main(["fleet", "--n-monitors", "0"]) == 2
    assert main(["fleet", "--levels", "nope"]) == 2
    assert main(["fleet", "--levels", ""]) == 2


def test_fleet_from_spec_runs_mixed_fleet(tmp_path, capsys):
    import numpy as np

    from repro.runtime import FleetSpec, RigSpec, RunResult
    spec = FleetSpec(
        rigs=(RigSpec(use_pulsed_drive=False, fast_calibration=True),
              RigSpec(overtemperature_k=7.0, use_pulsed_drive=False,
                      fast_calibration=True)),
        seed=7)
    spec_path = tmp_path / "fleet.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    out = tmp_path / "mixed.npz"
    code = main(["fleet", "--spec", str(spec_path), "--levels", "0,60",
                 "--dwell", "0.5", "--out", str(out)])
    assert code == 0
    result = RunResult.load(out)
    assert result.n_monitors == 2
    assert np.isfinite(np.asarray(result.measured_mps)).all()
    assert "2 monitors" in capsys.readouterr().out
    # the spec fully describes the fleet: explicit size/seed conflict
    assert main(["fleet", "--spec", str(spec_path), "--seed", "9"]) == 2
    assert main(["fleet", "--spec", str(spec_path),
                 "--n-monitors", "3"]) == 2


@pytest.mark.service
def test_serve_streams_concurrent_clients(capsys):
    code = main(["serve", "--clients", "3", "--n-monitors", "1",
                 "--levels", "0,60", "--dwell", "0.4", "--seed", "9",
                 "--tick-steps", "300"])
    assert code == 0
    out = capsys.readouterr().out
    # all three clients streamed and landed in the shared cohort
    for client_id in ("c1", "c2", "c3"):
        assert client_id in out
    assert "3 clients completed" in out
    # 800 steps in 300-step ticks -> 3 engine ticks, one snapshot each
    assert "3 engine ticks, 9 snapshots" in out


@pytest.mark.service
def test_serve_rejects_bad_knobs():
    assert main(["serve", "--clients", "0"]) == 2
    assert main(["serve", "--n-monitors", "0"]) == 2
    assert main(["serve", "--levels", "nope"]) == 2
    # service knob validation surfaces as a ReproError exit
    assert main(["serve", "--tick-steps", "0"]) == 1
