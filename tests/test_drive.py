"""Unit tests for the drive schemes."""

import pytest

from repro.errors import ConfigurationError
from repro.conditioning.drive import ContinuousDrive, PulsedDrive


def test_continuous_always_on():
    d = ContinuousDrive()
    for _ in range(10):
        decision = d.tick(1e-3)
        assert decision.energise
        assert decision.control_active
        assert decision.sample_valid
    assert d.duty_cycle == 1.0


def test_continuous_rejects_bad_dt():
    with pytest.raises(ConfigurationError):
        ContinuousDrive().tick(0.0)


def test_pulsed_validation():
    with pytest.raises(ConfigurationError):
        PulsedDrive(period_s=-1.0)
    with pytest.raises(ConfigurationError):
        PulsedDrive(duty=1.5)
    with pytest.raises(ConfigurationError):
        PulsedDrive(period_s=1.0, duty=0.1, blanking_s=0.2)  # > on-phase


def test_pulsed_timing():
    d = PulsedDrive(period_s=1.0, duty=0.3, blanking_s=0.05)
    dt = 1e-3
    decisions = [d.tick(dt) for _ in range(1000)]  # one full period
    on = [x.energise for x in decisions]
    valid = [x.sample_valid for x in decisions]
    assert sum(on) == pytest.approx(300, abs=2)
    assert sum(valid) == pytest.approx(250, abs=2)  # 300 - 50 blanking
    # Off-phase: no control, no validity.
    assert not decisions[500].control_active
    assert not decisions[500].sample_valid
    # Early on-phase is blanked but controlled.
    assert decisions[10].control_active
    assert not decisions[10].sample_valid


def test_pulsed_periodicity():
    d = PulsedDrive(period_s=0.5, duty=0.4, blanking_s=0.02)
    dt = 1e-3
    first = [d.tick(dt).energise for _ in range(500)]
    second = [d.tick(dt).energise for _ in range(500)]
    assert first == second


def test_pulsed_reset():
    d = PulsedDrive(period_s=1.0, duty=0.3)
    for _ in range(700):
        d.tick(1e-3)
    assert not d.tick(1e-3).energise  # in the off phase
    d.reset()
    assert d.tick(1e-3).energise  # back at the start


def test_effective_sample_fraction():
    d = PulsedDrive(period_s=1.0, duty=0.3, blanking_s=0.05)
    assert d.effective_sample_fraction == pytest.approx(0.25)
    assert d.duty_cycle == 0.3


from hypothesis import given, settings, strategies as st


@settings(max_examples=30)
@given(st.floats(min_value=0.1, max_value=2.0),
       st.floats(min_value=0.05, max_value=0.95))
def test_pulsed_timing_sums_property(period, duty):
    """Over whole periods, on-time fraction equals the duty for any
    (period, duty) combination, and validity never exceeds energising."""
    blanking = min(0.02, duty * period * 0.5)
    d = PulsedDrive(period_s=period, duty=duty, blanking_s=blanking)
    dt = period / 500.0
    decisions = [d.tick(dt) for _ in range(3 * 500)]  # 3 whole periods
    on_fraction = sum(x.energise for x in decisions) / len(decisions)
    assert on_fraction == pytest.approx(duty, abs=0.01)
    assert all(x.energise or not x.sample_valid for x in decisions)
    assert all(x.energise == x.control_active for x in decisions)
