"""Per-stage kernel profiler: accumulator, engine hooks, surfaces.

Covers the :class:`~repro.observability.profile.Profiler` primitive,
the batch-engine stage hooks (``kernel.plan``, ``kernel.ar1_block``,
``kernel.film``, ``kernel.chunk_loop``), bit-parity of profiled vs
unprofiled runs, the :meth:`RunResult.profile` / ``concat`` plumbing,
``Session.stats()["profile"]`` and the CLI ``--profile-out`` flag.
"""

import json

import numpy as np
import pytest

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.observability import MetricsRegistry, Profiler
from repro.runtime import BatchEngine, RunResult
from repro.runtime.kernels import PROFILE_STAGES
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor


@pytest.fixture
def fresh_profiler():
    """Swap in a fresh enabled default profiler; restore afterwards."""
    old = obs.get_profiler()
    profiler = obs.set_profiler(
        Profiler(registry=MetricsRegistry(enabled=False), enabled=True))
    yield profiler
    obs.set_profiler(old)


def _rig(seed=11):
    return build_calibrated_monitor(seed=seed, fast=True).rig


# -- primitive ----------------------------------------------------------------


def test_disabled_profiler_is_a_no_op():
    profiler = Profiler(enabled=False)
    profiler.add("kernel.plan", 1.0, 1.0)
    with profiler.stage("kernel.plan"):
        pass
    profiler.merge({"kernel.plan": {"calls": 1, "wall_s": 1.0, "cpu_s": 1.0}})
    assert profiler.report() == {}


def test_add_accumulates_and_batches_calls():
    profiler = Profiler(registry=MetricsRegistry(enabled=False))
    profiler.add("kernel.film", 0.5, 0.25, calls=10)
    profiler.add("kernel.film", 0.5, 0.25, calls=5)
    assert profiler.report() == {
        "kernel.film": {"calls": 15, "wall_s": 1.0, "cpu_s": 0.5}}
    with pytest.raises(ConfigurationError):
        profiler.add("", 1.0)
    with pytest.raises(ConfigurationError):
        profiler.add(" padded ", 1.0)


def test_stage_context_manager_times_region():
    profiler = Profiler(registry=MetricsRegistry(enabled=False))
    with profiler.stage("outer"):
        sum(range(1000))
    report = profiler.report()
    assert report["outer"]["calls"] == 1
    assert report["outer"]["wall_s"] > 0.0


def test_registry_receives_profile_histograms():
    registry = MetricsRegistry(enabled=True)
    profiler = Profiler(registry=registry)
    profiler.add("kernel.plan", 0.5, 0.25)
    snap = registry.snapshot()
    assert snap["profile.kernel.plan.wall_s"]["count"] == 1
    assert snap["profile.kernel.plan.wall_s"]["sum"] == 0.5
    assert snap["profile.kernel.plan.cpu_s"]["sum"] == 0.25
    # A disabled registry sees no further observations (report-only).
    registry.enabled = False
    profiler.add("kernel.plan", 0.5, 0.25)
    assert registry.snapshot()["profile.kernel.plan.wall_s"]["count"] == 1
    assert profiler.report()["kernel.plan"]["calls"] == 2


def test_merge_is_accumulator_only():
    registry = MetricsRegistry(enabled=True)
    profiler = Profiler(registry=registry)
    profiler.merge({"kernel.film": {"calls": 7, "wall_s": 2.0, "cpu_s": 1.0}})
    profiler.merge({"kernel.film": {"calls": 3, "wall_s": 1.0, "cpu_s": 0.5}})
    assert profiler.report() == {
        "kernel.film": {"calls": 10, "wall_s": 3.0, "cpu_s": 1.5}}
    # Worker histograms arrive through the metrics merge, never here.
    assert "profile.kernel.film.wall_s" not in registry.names()


def test_reset_clears_stages():
    profiler = Profiler(registry=MetricsRegistry(enabled=False))
    profiler.add("kernel.plan", 1.0)
    profiler.reset()
    assert profiler.report() == {}


def test_set_profiler_validates():
    with pytest.raises(ConfigurationError):
        obs.set_profiler(object())


# -- engine hooks -------------------------------------------------------------


def test_profiled_engine_run_attributes_all_stages(fresh_profiler):
    result = BatchEngine([_rig()]).run(hold(50.0, 0.5))
    report = result.profile()
    assert set(report) == set(PROFILE_STAGES)
    # One film call per sample step (vectorized across the fleet).
    assert report["kernel.film"]["calls"] == 500
    for stage in PROFILE_STAGES:
        assert report[stage]["calls"] >= 1
        assert report[stage]["wall_s"] >= 0.0
        assert report[stage]["cpu_s"] >= 0.0
    # The default profiler accumulated the same stages.
    assert set(fresh_profiler.report()) == set(PROFILE_STAGES)


def test_profiling_does_not_change_the_traces(fresh_profiler):
    profiled = BatchEngine([_rig(seed=21)]).run(hold(50.0, 0.5))
    obs.get_profiler().enabled = False
    plain = BatchEngine([_rig(seed=21)]).run(hold(50.0, 0.5))
    assert plain.profile() == {}
    assert np.array_equal(np.asarray(profiled.time_s),
                          np.asarray(plain.time_s))
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(profiled, name)),
                              np.asarray(getattr(plain, name))), name


def test_unprofiled_run_has_empty_report():
    result = BatchEngine([_rig(seed=22)]).run(hold(50.0, 0.5))
    assert result.profile() == {}


# -- RunResult plumbing -------------------------------------------------------


def _toy_result(n=1, m=3):
    time_s = np.arange(m, dtype=float)
    traces = {name: np.zeros((n, m)) for name in RunResult.STACKED_FIELDS}
    return RunResult(time_s=time_s, **traces)


def test_attach_profile_survives_copy_not_archive(tmp_path):
    result = _toy_result()
    result.attach_profile(
        {"kernel.plan": {"calls": 2, "wall_s": 1.0, "cpu_s": 0.5}})
    assert result.profile()["kernel.plan"]["calls"] == 2
    # profile() hands out copies, not the live dict
    result.profile()["kernel.plan"]["calls"] = 99
    assert result.profile()["kernel.plan"]["calls"] == 2
    # archives ignore the report: save/load round-trips the traces only
    path = tmp_path / "r.npz"
    result.save(path)
    assert RunResult.load(path).profile() == {}


def test_concat_sums_part_profiles():
    a = _toy_result().attach_profile(
        {"kernel.film": {"calls": 10, "wall_s": 1.0, "cpu_s": 0.5}})
    b = _toy_result().attach_profile(
        {"kernel.film": {"calls": 5, "wall_s": 0.5, "cpu_s": 0.25},
         "kernel.plan": {"calls": 1, "wall_s": 0.1, "cpu_s": 0.1}})
    merged = RunResult.concat([a, b])
    assert merged.n_monitors == 2
    report = merged.profile()
    assert report["kernel.film"] == {
        "calls": 15, "wall_s": 1.5, "cpu_s": 0.75}
    assert report["kernel.plan"]["calls"] == 1
    # unprofiled parts concat to an unprofiled whole
    assert RunResult.concat([_toy_result(), _toy_result()]).profile() == {}


# -- session and CLI surfaces -------------------------------------------------


def test_session_stats_exposes_profile(fresh_profiler):
    from repro.runtime import Session
    from repro.station.scenarios import clear_calibration_cache

    clear_calibration_cache()
    with Session(n_monitors=1, seed=33, fast_calibration=True) as session:
        session.calibrate()
        result = session.run(hold(60.0, 0.5))
        stats = session.stats()
    assert set(stats["profile"]) == set(PROFILE_STAGES)
    assert stats["profile"]["kernel.film"]["calls"] == 500
    assert set(result.profile()) == set(PROFILE_STAGES)


def test_cli_profile_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "profile.json"
    code = main(["--profile-out", str(out), "fleet", "--n-monitors", "2",
                 "--levels", "0,50", "--dwell", "1.0", "--seed", "9"])
    assert code == 0
    report = json.loads(out.read_text())["stages"]
    assert set(report) >= set(PROFILE_STAGES)
    assert report["kernel.film"]["calls"] == 2000
    assert "profile written" in capsys.readouterr().out
    # the flag must not leave the default profiler enabled
    assert not obs.get_profiler().enabled
