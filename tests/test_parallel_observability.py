"""Cross-process observability through the sharded runtime.

The acceptance surface of the telemetry harvest: a sharded
``Session.run`` / ``ShardedEngine.run`` with observability enabled must
yield one merged registry containing the workers' ``runtime.*`` /
``kernel.*`` metrics with exact totals, a span forest whose worker
spans nest under the parent's ``shard.run`` span, merged profiler
reports, and identical metric-name sets whether shards ran in worker
processes, were retried, or fell back to the in-process serial path.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.observability import (EventLog, MetricsRegistry, Profiler, Tracer,
                                 export_jsonl, export_spans_jsonl,
                                 parse_jsonl, parse_spans_jsonl, span_tree)
from repro.runtime import (RunResult, Session, ShardedEngine,
                           spawn_monitor_seeds)
from repro.runtime.kernels import PROFILE_STAGES
from repro.runtime.parallel import FAULT_ENV
from repro.station.profiles import hold
from repro.station.scenarios import (build_calibrated_monitor,
                                     clear_calibration_cache)

pytestmark = pytest.mark.parallel

PROFILE = hold(50.0, 1.0)
SEED = 77


def _fleet(n=3):
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(SEED, n)]


@pytest.fixture
def fresh():
    """Fresh enabled sinks (registry, tracer, events, profiler)."""
    old = (obs.get_registry(), obs.get_tracer(), obs.get_event_log(),
           obs.get_profiler())
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(registry=registry, enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    profiler = obs.set_profiler(Profiler(registry=registry, enabled=True))
    yield registry, tracer, log, profiler
    obs.set_registry(old[0])
    obs.set_tracer(old[1])
    obs.set_event_log(old[2])
    obs.set_profiler(old[3])


def test_sharded_session_merges_worker_telemetry(fresh):
    registry, tracer, _, _ = fresh
    clear_calibration_cache()
    with Session(n_monitors=4, seed=SEED, fast_calibration=True) as session:
        session.calibrate()
        result = session.run(hold(50.0, 1.0), workers=4)
    snap = registry.snapshot()
    # Worker-origin runtime metrics, merged exactly: 4 workers x 1
    # monitor x 1000 samples — any double count breaks the total.
    assert snap["runtime.batch.samples"]["value"] == 4 * 1000
    assert snap["span.batch.run.s"]["count"] == 4
    assert snap["span.shard.worker.s"]["count"] == 4
    # The merged export carries the worker series.
    exported = parse_jsonl(export_jsonl(registry))
    assert exported["runtime.batch.samples"]["value"] == 4000
    # Span forest: session.run -> shard.run -> 4 x shard.worker, each
    # worker span parenting that worker's batch.run.
    records = tracer.records()
    shard_run = next(r for r in records if r.name == "shard.run")
    workers = [r for r in records if r.name == "shard.worker"]
    assert len(workers) == 4
    assert all(w.parent_id == shard_run.span_id for w in workers)
    assert all(w.trace_id == shard_run.trace_id for w in workers)
    batch_runs = [r for r in records if r.name == "batch.run"]
    assert {b.parent_id for b in batch_runs} == {w.span_id for w in workers}
    roots = span_tree(records)
    session_run = next(n for n in roots if n["name"] == "session.run")
    (shard_node,) = session_run["children"]
    assert shard_node["name"] == "shard.run"
    assert [c["name"] for c in shard_node["children"]] == ["shard.worker"] * 4
    # The full tree survives a JSONL round trip.
    assert parse_spans_jsonl(export_spans_jsonl(records)) == records
    # Profiler reports merged from the workers onto the result.
    report = result.profile()
    assert set(report) == set(PROFILE_STAGES)
    assert report["kernel.film"]["calls"] == 4 * 1000


def test_profile_histograms_ride_the_metrics_merge(fresh):
    registry, _, _, _ = fresh
    engine = ShardedEngine(_fleet(), workers=3)
    result = engine.run(PROFILE)
    names = registry.names()
    for stage in PROFILE_STAGES:
        assert f"profile.{stage}.wall_s" in names, stage
    # Three worker engines, one film call per sample step each.
    assert result.profile()["kernel.film"]["calls"] == 3 * 1000


def _metric_names(run_engine, monkeypatch, fault=None):
    """Run under a full fresh sink set; return (result, metric names).

    A complete swap matters: the tracer and profiler feed ``span.*`` /
    ``profile.*`` histograms into *their* registry, so reusing the
    fixture's sinks with a new registry would route the in-process
    fallback's histograms somewhere else than the worker harvest merge.
    """
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    obs.set_tracer(Tracer(registry=registry, enabled=True))
    obs.set_profiler(Profiler(registry=registry, enabled=True))
    if fault is not None:
        monkeypatch.setenv(FAULT_ENV, fault)
    else:
        monkeypatch.delenv(FAULT_ENV, raising=False)
    result = run_engine()
    monkeypatch.delenv(FAULT_ENV, raising=False)
    return result, set(registry.names())


def test_fallback_and_worker_paths_emit_same_metric_names(
        fresh, monkeypatch):
    """Satellite check: serial fallback keeps the metric surface.

    A run whose shards all crash into the in-process fallback must
    publish the same merged metric names as a clean worker run — plus,
    at most, the degradation counters themselves.
    """
    clean_engine = ShardedEngine(_fleet(), workers=3, max_retries=0)
    clean, clean_names = _metric_names(
        lambda: clean_engine.run(PROFILE), monkeypatch)
    faulty_engine = ShardedEngine(_fleet(), workers=3, max_retries=0)
    fallen, fallback_names = _metric_names(
        lambda: faulty_engine.run(PROFILE), monkeypatch, fault="crash:1")
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(clean, name)),
                              np.asarray(getattr(fallen, name))), name
    assert clean_names <= fallback_names
    assert fallback_names - clean_names <= {"shard.retries",
                                            "shard.fallbacks"}


def test_retried_shard_counts_samples_exactly_once(
        fresh, monkeypatch, tmp_path):
    """A crash-once shard retries successfully without double-counting.

    Only the successful attempt's harvest ships home: the totals must
    equal the clean-run totals even though shard 0 ran twice.
    """
    registry, _, _, _ = fresh
    monkeypatch.setenv(FAULT_ENV, f"crash-once:0:{tmp_path}")
    engine = ShardedEngine(_fleet(), workers=3, max_retries=2)
    engine.run(PROFILE)
    snap = registry.snapshot()
    assert (tmp_path / "shard0.tripped").exists()
    assert snap["shard.retries"]["value"] >= 1
    assert snap["runtime.batch.samples"]["value"] == 3 * 1000
    assert snap["span.shard.worker.s"]["count"] == 3


def test_disabled_observability_sharded_run_stays_clean(fresh):
    registry, tracer, log, profiler = fresh
    obs.disable()
    engine = ShardedEngine(_fleet(), workers=3)
    result = engine.run(PROFILE)
    assert registry.snapshot() == {}
    assert tracer.records() == []
    assert log.events() == []
    assert profiler.report() == {}
    assert result.profile() == {}


def test_sharded_fleet_characterize_emits_event(fresh):
    _, _, log, _ = fresh
    from repro.station.fleet import characterize_meter_pool

    clear_calibration_cache()
    characterize_meter_pool(n_meters=2, seed=SEED, workers=2,
                            duration_s=2.0, settle_s=0.5)
    events = log.events("fleet.characterize")
    assert len(events) == 1
    assert events[0].fields["n_meters"] == 2
    assert events[0].fields["workers"] == 2
