"""Unit tests for unit conversions."""

import numpy as np
import pytest

from repro import units


def test_speed_roundtrip():
    assert float(units.mps_to_cmps(units.cmps_to_mps(250.0))) == pytest.approx(250.0)
    assert float(units.cmps_to_mps(100.0)) == pytest.approx(1.0)


def test_pressure_roundtrip():
    assert float(units.pa_to_bar(units.bar_to_pa(3.0))) == pytest.approx(3.0)
    assert float(units.bar_to_pa(1.0)) == pytest.approx(1e5)


def test_temperature_roundtrip():
    assert float(units.kelvin_to_celsius(units.celsius_to_kelvin(15.0))) == pytest.approx(15.0)
    assert float(units.celsius_to_kelvin(0.0)) == pytest.approx(273.15)


def test_volumetric_conversion_dn50():
    d = 0.05
    # 1 m/s in a DN50 pipe: A = pi*0.025^2 = 1.9635e-3 m^2 -> 117.8 L/min.
    q = float(units.mps_to_lpm(1.0, d))
    assert q == pytest.approx(117.81, rel=1e-3)
    assert float(units.lpm_to_mps(q, d)) == pytest.approx(1.0)


def test_array_inputs():
    v = np.array([0.0, 1.0, 2.5])
    out = units.mps_to_cmps(v)
    assert out.shape == v.shape
    assert out[2] == pytest.approx(250.0)
