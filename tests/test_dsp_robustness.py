"""DSP robustness property tests (hypothesis).

BIBO stability, saturation recovery and state hygiene of the digital
IPs under adversarial inputs — the properties silicon validation
actually sweeps.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isif.fir import FirFilter, design_lowpass_fir
from repro.isif.fixed_point import QFormat
from repro.isif.iir import IIRBiquad, OnePoleLowpass, design_lowpass_biquad
from repro.isif.pi_controller import PIConfig, PIController

Q = QFormat(3, 16)

bounded_signal = st.lists(
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    min_size=20, max_size=200)


@settings(max_examples=30)
@given(bounded_signal)
def test_fir_bibo(x):
    f = FirFilter(design_lowpass_fir(100.0, 1000.0, taps=15))
    bound = float(np.sum(np.abs(f.coefficients))) * 2.0
    for v in x:
        assert abs(f.step(v)) <= bound + 1e-9


@settings(max_examples=30)
@given(bounded_signal)
def test_biquad_bibo(x):
    b, a = design_lowpass_biquad(80.0, 1000.0)
    f = IIRBiquad(b, a)
    for v in x:
        assert abs(f.step(v)) < 10.0  # loose BIBO bound for a LP biquad


@settings(max_examples=30)
@given(bounded_signal)
def test_onepole_output_within_input_hull(x):
    """A one-pole LP output never leaves the convex hull of its inputs
    (plus the initial state)."""
    f = OnePoleLowpass(50.0, 1000.0)
    lo, hi = 0.0, 0.0
    for v in x:
        lo, hi = min(lo, v), max(hi, v)
        y = f.step(v)
        assert lo - 1e-12 <= y <= hi + 1e-12


@settings(max_examples=20)
@given(bounded_signal)
def test_fixed_point_fir_never_exceeds_format(x):
    f = FirFilter(design_lowpass_fir(100.0, 1000.0, taps=15), qformat=Q)
    for v in x:
        code = f.step_codes(Q.to_int(v))
        assert Q.min_int <= code <= Q.max_int


@settings(max_examples=20)
@given(st.lists(st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False), min_size=10, max_size=100))
def test_pi_output_always_within_limits(errors):
    pi = PIController(PIConfig(kp=3.0, ki=500.0, dt_s=1e-3,
                               out_min=0.0, out_max=5.0))
    for e in errors:
        out = pi.step(e)
        assert 0.0 <= out <= 5.0


@settings(max_examples=20)
@given(st.lists(st.floats(min_value=-0.2, max_value=0.2,
                          allow_nan=False), min_size=10, max_size=100))
def test_pi_fixed_point_output_always_within_limits(errors):
    pi = PIController(PIConfig(kp=3.0, ki=500.0, dt_s=1e-3,
                               out_min=0.0, out_max=5.0, qformat=Q))
    for e in errors:
        out = pi.step(e)
        assert 0.0 <= out <= 5.0 + Q.resolution


def test_filters_recover_after_extreme_burst():
    """A full-scale burst must not leave any IP stuck (no NaN, no
    latched saturation): after the burst, DC tracking resumes."""
    b, a = design_lowpass_biquad(50.0, 1000.0)
    chain = [
        FirFilter(design_lowpass_fir(100.0, 1000.0, taps=15), qformat=Q),
        IIRBiquad(b, a, qformat=Q),
        OnePoleLowpass(10.0, 1000.0, qformat=Q),
    ]
    for f in chain:
        for _ in range(50):
            f.step(7.9)  # near format max
        out = 0.0
        for _ in range(3000):
            out = f.step(0.5)
        dc = f.dc_gain() if hasattr(f, "dc_gain") else 1.0
        assert out == pytest.approx(0.5 * dc, abs=0.02)
