"""Tests for the opt-in observability layer (metrics, tracing, events).

Covers the primitives in isolation, both exporter round-trips, the
instrumentation of the hot paths (batch engine, session lifecycle,
calibration cache, telemetry framing, scheduler), and the CLI
``--metrics-out`` flag.
"""

import json
import math

import pytest

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.observability import (Event, EventLog, MetricsRegistry, Tracer,
                                 export_jsonl, export_prometheus,
                                 parse_jsonl, parse_prometheus,
                                 prometheus_name)
from repro.observability.export import (escape_label_value,
                                        unescape_label_value)


@pytest.fixture
def fresh():
    """Swap in fresh default registry/tracer/log; restore afterwards."""
    old_reg = obs.get_registry()
    old_tr = obs.get_tracer()
    old_log = obs.get_event_log()
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    yield registry, tracer, log
    obs.set_registry(old_reg)
    obs.set_tracer(old_tr)
    obs.set_event_log(old_log)


# -- metrics ------------------------------------------------------------------


def test_counter_gauge_histogram_basics(fresh):
    registry, _, _ = fresh
    c = registry.counter("t.counter")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ConfigurationError):
        c.inc(-1)
    g = registry.gauge("t.gauge")
    g.set(2.5)
    g.set(1.5)
    assert g.value == 1.5
    h = registry.histogram("t.hist")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.count == 4 and h.sum == 10.0
    assert h.min == 1.0 and h.max == 4.0
    assert h.mean == 2.5
    assert h.quantile(0.5) == 2.0


def test_registry_get_or_create_is_idempotent(fresh):
    registry, _, _ = fresh
    assert registry.counter("same") is registry.counter("same")
    with pytest.raises(ConfigurationError):
        registry.gauge("same")  # kind morphing refused
    with pytest.raises(ConfigurationError):
        registry.counter("")  # bad name


def test_disabled_registry_mutations_are_noops():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("quiet.counter")
    h = registry.histogram("quiet.hist")
    g = registry.gauge("quiet.gauge")
    c.inc(100)
    h.observe(1.0)
    g.set(9.0)
    assert c.value == 0
    assert h.count == 0
    assert g.value == 0.0
    registry.enabled = True
    c.inc()
    assert c.value == 1


def test_histogram_reservoir_is_bounded(fresh):
    registry, _, _ = fresh
    h = registry.histogram("t.bounded", reservoir_size=8)
    for i in range(1000):
        h.observe(float(i))
    assert h.count == 1000          # exact stats over everything
    assert len(h._ring) == 8        # bounded memory
    assert h.quantile(1.0) == 999.0  # window holds the most recent values


def test_snapshot_is_json_safe(fresh):
    registry, _, _ = fresh
    registry.counter("a.count").inc(3)
    registry.gauge("a.gauge").set(0.5)
    registry.histogram("a.hist")  # empty: None fields, not NaN
    snap = registry.snapshot()
    text = json.dumps(snap)  # must not raise
    assert json.loads(text)["a.hist"]["p50"] is None
    assert snap["a.count"] == {"type": "counter", "value": 3}
    assert list(snap) == sorted(snap)


def test_registry_discard_retires_instruments(fresh):
    """Per-cohort instruments can be dropped to bound cardinality."""
    registry, _, _ = fresh
    registry.gauge("service.group.9.queue_depth").set(3)
    registry.counter("keep.me").inc()
    assert registry.discard("service.group.9.queue_depth") is True
    assert registry.discard("service.group.9.queue_depth") is False
    assert "service.group.9.queue_depth" not in registry.names()
    assert "keep.me" in registry.names()
    # re-registering after a discard starts from scratch
    assert registry.gauge("service.group.9.queue_depth").value == 0.0


# -- tracer -------------------------------------------------------------------


def test_spans_nest_and_feed_histograms(fresh):
    registry, tracer, _ = fresh
    with tracer.span("outer", label="x"):
        with tracer.span("inner"):
            pass
    records = {r.name: r for r in tracer.records()}
    assert records["inner"].parent == "outer"
    assert records["outer"].parent is None
    assert records["outer"].tags == {"label": "x"}
    assert records["inner"].duration_s >= 0.0
    snap = registry.snapshot()
    assert snap["span.outer.s"]["count"] == 1
    assert snap["span.inner.s"]["count"] == 1


def test_disabled_tracer_hands_out_null_span():
    tracer = Tracer(enabled=False)
    span_a = tracer.span("nothing")
    span_b = tracer.span("nothing.else")
    assert span_a is span_b  # shared singleton, zero allocation
    with span_a:
        pass
    assert tracer.records() == []


def test_tracer_history_is_bounded():
    tracer = Tracer(enabled=True, registry=MetricsRegistry(enabled=False))
    for i in range(20):
        with tracer.span(f"s{i}"):
            pass
    tracer_small = Tracer(enabled=True, max_spans=4,
                          registry=MetricsRegistry(enabled=False))
    for i in range(20):
        with tracer_small.span(f"s{i}"):
            pass
    assert len(tracer.records()) == 20
    assert len(tracer_small.records()) == 4


# -- events -------------------------------------------------------------------


def test_event_log_round_trip(fresh):
    _, _, log = fresh
    log.emit("unit.test", index=1, label="a")
    log.emit("unit.other", value=2.5)
    text = log.to_jsonl()
    back = EventLog.from_jsonl(text)
    assert [e.name for e in back] == ["unit.test", "unit.other"]
    assert back[0].fields == {"index": 1, "label": "a"}
    assert back[1].fields == {"value": 2.5}
    assert log.events("unit.test")[0].fields["index"] == 1


def test_event_log_disabled_and_malformed():
    log = EventLog(enabled=False)
    assert log.emit("quiet") is None
    assert log.events() == []
    with pytest.raises(ConfigurationError):
        EventLog.from_jsonl("not json\n")
    with pytest.raises(ConfigurationError):
        EventLog.from_jsonl('{"no_name": 1}\n')


# -- exporters ----------------------------------------------------------------


def _populated_registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("x.counter").inc(7)
    registry.gauge("x.gauge").set(1.25)
    h = registry.histogram("x.hist")
    for v in (0.5, 1.5, 2.5, 3.5):
        h.observe(v)
    return registry


def test_jsonl_export_round_trip():
    registry = _populated_registry()
    text = export_jsonl(registry)
    assert parse_jsonl(text) == registry.snapshot()


def test_jsonl_parse_rejects_garbage():
    with pytest.raises(ConfigurationError):
        parse_jsonl("{broken\n")
    line = json.dumps({"name": "dup", "type": "counter", "value": 1})
    with pytest.raises(ConfigurationError):
        parse_jsonl(line + "\n" + line + "\n")


def test_prometheus_export_round_trip():
    registry = _populated_registry()
    text = export_prometheus(registry)
    parsed = parse_prometheus(text)
    snap = registry.snapshot()
    assert parsed["x.counter"] == {"type": "counter", "value": 7}
    assert parsed["x.gauge"] == {"type": "gauge", "value": 1.25}
    hist = parsed["x.hist"]
    assert hist["count"] == snap["x.hist"]["count"]
    assert hist["sum"] == snap["x.hist"]["sum"]
    for key in ("p50", "p90", "p99"):
        assert hist[key] == snap["x.hist"][key]


def test_prometheus_name_sanitization():
    assert prometheus_name("runtime.batch.chunk_s") == \
        "repro_runtime_batch_chunk_s"
    assert prometheus_name("weird name!") == "repro_weird_name_"


def test_prometheus_parse_rejects_orphans():
    with pytest.raises(ConfigurationError):
        parse_prometheus("repro_unknown 1\n")


def test_prometheus_round_trips_nan_and_infinities():
    """Non-finite samples use the canonical exposition spellings."""
    registry = MetricsRegistry(enabled=True)
    registry.gauge("nf.nan").set(float("nan"))
    registry.gauge("nf.pos").set(float("inf"))
    registry.gauge("nf.neg").set(float("-inf"))
    text = export_prometheus(registry)
    assert "repro_nf_nan NaN" in text
    assert "repro_nf_pos +Inf" in text
    assert "repro_nf_neg -Inf" in text
    # Python's repr forms are NOT valid exposition samples.
    assert " nan" not in text and " inf" not in text
    parsed = parse_prometheus(text)
    assert math.isnan(parsed["nf.nan"]["value"])
    assert parsed["nf.pos"]["value"] == float("inf")
    assert parsed["nf.neg"]["value"] == float("-inf")


def test_prometheus_empty_registry_round_trips():
    empty = MetricsRegistry(enabled=True)
    assert export_prometheus(empty) == ""
    assert parse_prometheus("") == {}
    assert parse_jsonl(export_jsonl(empty)) == {}


def test_prometheus_label_value_escaping_round_trips():
    tricky = 'back\\slash "quoted"\nnewline'
    escaped = escape_label_value(tricky)
    assert "\n" not in escaped
    assert r"\\" in escaped and r"\"" in escaped and r"\n" in escaped
    assert unescape_label_value(escaped) == tricky
    # unknown escapes pass through rather than corrupting the value
    assert unescape_label_value(r"\q") == r"\q"


def test_prometheus_help_line_escapes_metric_names():
    """A dotted name with \\ or newline survives the HELP round trip."""
    snapshot = {"odd\\name\nwith newline": {"type": "counter", "value": 2}}
    text = export_prometheus(snapshot)
    assert text.count("\n") == len(text.splitlines())  # no line injection
    parsed = parse_prometheus(text)
    assert parsed == {"odd\\name\nwith newline":
                      {"type": "counter", "value": 2}}


def test_prometheus_parse_rejects_bad_sample_values():
    with pytest.raises(ConfigurationError):
        parse_prometheus("# HELP repro_x x\n# TYPE repro_x counter\n"
                         "repro_x notanumber\n")
    with pytest.raises(ConfigurationError):
        parse_prometheus("# HELP repro_x x\nrepro_x{quantile=\"0.5\"\n")


# -- global switches ----------------------------------------------------------


def test_default_observability_starts_disabled():
    # Process default: strictly opt-in (this also guards against tests
    # leaking an enabled state into the suite).
    assert not obs.enabled()


def test_observed_context_restores_state(fresh):
    registry, tracer, log = fresh
    obs.disable()
    assert not obs.enabled()
    with obs.observed() as reg:
        assert reg is registry
        assert obs.enabled() and tracer.enabled and log.enabled
    assert not obs.enabled()
    assert not tracer.enabled and not log.enabled


# -- instrumented hot paths ---------------------------------------------------


def test_instrumented_session_run_populates_metrics(fresh):
    registry, tracer, log = fresh
    from repro.runtime import Session
    from repro.station.profiles import hold
    from repro.station.scenarios import clear_calibration_cache

    clear_calibration_cache()
    with Session(n_monitors=2, seed=31, fast_calibration=True) as session:
        session.calibrate()
        session.run(hold(60.0, 1.0))
        stats = session.stats()
    snap = registry.snapshot()
    # batch engine
    assert snap["runtime.batch.samples"]["value"] == 2 * 1000
    assert snap["runtime.batch.chunks"]["value"] >= 1
    assert snap["runtime.batch.chunk_s"]["count"] >= 1
    assert snap["runtime.batch.fleet_size"]["value"] == 2
    assert snap["runtime.batch.samples_per_s"]["value"] > 0
    # scheduler bulk accounting rode along
    assert snap["isif.scheduler.bulk_ticks"]["value"] >= 2 * 1000
    # calibration cache: 2 builds at calibrate, 2 re-materializations
    assert snap["station.calibration_cache.misses"]["value"] == 2
    assert snap["station.calibration_cache.hits"]["value"] == 2
    # spans landed as histograms
    assert snap["span.session.calibrate.s"]["count"] == 1
    assert snap["span.session.run.s"]["count"] == 1
    assert snap["span.batch.run.s"]["count"] == 1
    # session accessor
    assert stats["state"] == "calibrated"
    assert stats["runs"] == 1
    assert set(stats["timings_s"]) == {"open_s", "calibrate_s", "run_s"}
    assert stats["calibration_cache"]["hits"] == 2
    assert stats["metrics"]["runtime.batch.samples"]["value"] == 2000
    # lifecycle events
    states = [e.fields["state"] for e in log.events("session.state")]
    assert states == ["open", "calibrated", "closed"]


def test_observability_disabled_run_is_clean(fresh):
    registry, _, _ = fresh
    obs.disable()
    from repro.runtime import Session
    from repro.station.profiles import hold

    with Session(n_monitors=1, seed=32, fast_calibration=True) as session:
        session.calibrate()
        session.run(hold(60.0, 0.5))
        stats = session.stats()
    assert registry.snapshot() == {}
    assert stats["metrics"] == {}
    # timings are session-local and always on
    assert stats["timings_s"]["run_s"] > 0.0


def test_scalar_cta_loop_counters(fresh):
    registry, _, _ = fresh
    from repro.conditioning.cta import CTAController
    from repro.isif.platform import ISIFPlatform
    from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

    sensor = MAFSensor(MAFConfig(seed=5))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=5))
    controller.settle(FlowConditions(speed_mps=1.0), 0.05)
    snap = registry.snapshot()
    assert snap["conditioning.cta.ticks"]["value"] == 50
    assert snap["conditioning.cta.settle_ticks"]["value"] == 50
    # saturated at startup while the supplies slew from the preset
    assert snap.get("conditioning.cta.pi_saturated_ticks",
                    {"value": 0})["value"] >= 0


def test_telemetry_channel_counters(fresh):
    registry, _, _ = fresh
    from repro.conditioning.monitor import FlowMeasurement
    from repro.conditioning.telemetry import TelemetryChannel
    from repro.isif.uart import UartLink

    ch = TelemetryChannel(UartLink(bit_error_rate=0.01, seed=13))
    for i in range(100):
        ch.send(FlowMeasurement(time_s=float(i), speed_mps=1.0,
                                direction=1, bubble_coverage=0.0,
                                valid=True))
    snap = registry.snapshot()
    assert snap["conditioning.telemetry.frames_sent"]["value"] == 100
    assert snap["conditioning.telemetry.frames_dropped"]["value"] == \
        ch.frames_dropped
    assert ch.frames_dropped > 0
    assert snap["conditioning.telemetry.crc_failures"]["value"] == \
        ch.crc_failures


def test_fleet_run_metrics_and_events(fresh):
    registry, _, log = fresh
    from repro.station.demand import DiurnalDemand
    from repro.station.fleet import MonitoredNetwork
    from repro.station.network import PipeNetwork

    net = PipeNetwork()
    net.add_pipe("reservoir", "A")
    net.add_pipe("A", "B", demand_m3_s=0.8e-3)
    fleet = MonitoredNetwork(net, seed=6)
    fleet.attach_demand("B", DiurnalDemand(0.8e-3, seed=7))
    fleet.commission(hours=1.0, snapshot_s=300.0)
    fleet.run(1.0, snapshot_s=120.0)
    snap = registry.snapshot()
    assert snap["station.fleet.snapshots"]["value"] == 30
    assert snap["span.fleet.run.s"]["count"] == 1
    assert log.events("fleet.run")[0].fields["snapshots"] == 30


def test_cli_metrics_out(tmp_path, capsys):
    from repro.cli import main

    out_jsonl = tmp_path / "metrics.jsonl"
    assert main(["--metrics-out", str(out_jsonl), "selftest"]) == 0
    parse_jsonl(out_jsonl.read_text())  # valid, possibly empty
    out_prom = tmp_path / "metrics.prom"
    assert main(["--metrics-out", str(out_prom), "selftest"]) == 0
    parse_prometheus(out_prom.read_text())
    assert "metrics written" in capsys.readouterr().out
    # the flag must not leave the process-wide default enabled for
    # library users who imported repro in the same interpreter
    obs.disable()
    assert not obs.enabled()
