"""Batch-engine parity and session-lifecycle tests.

The acceptance bar for the vectorized runtime is parity with the scalar
reference path: with identical seeds, the batched traces must match the
per-sample loop to ≤1e-6 m/s.  The engine is designed to be bit-exact,
so these tests assert exact array equality (a strictly stronger check)
and the numeric tolerance would only come into play if a platform's
libm ever disagreed with itself.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SessionError
from repro.runtime import BatchEngine, RunResult, Session, run_batch
from repro.station.profiles import bidirectional_staircase, hold, staircase
from repro.station.scenarios import build_calibrated_monitor


def _parity_case(profile, n_monitors=2, seed=2024):
    with Session(n_monitors=n_monitors, seed=seed,
                 fast_calibration=True) as session:
        session.calibrate()
        batched = session.run(profile, engine="batch")
        scalar = session.run(profile, engine="scalar")
    return batched, scalar


def _assert_parity(batched, scalar):
    for name in RunResult.STACKED_FIELDS:
        a = np.asarray(getattr(batched, name), dtype=float)
        b = np.asarray(getattr(scalar, name), dtype=float)
        assert a.shape == b.shape, name
        np.testing.assert_allclose(a, b, atol=1e-6, err_msg=name)
        # The design target is stronger: bit-exact.
        assert np.array_equal(a, b), f"{name} differs bitwise"


@pytest.mark.parametrize("profile", [
    hold(50.0, 3.0),
    staircase([0.0, 80.0, 200.0], dwell_s=2.0),
    bidirectional_staircase([40.0, 120.0], dwell_s=1.5),
], ids=["hold", "staircase", "bidirectional"])
def test_batch_matches_scalar(profile):
    batched, scalar = _parity_case(profile)
    _assert_parity(batched, scalar)


def test_run_batch_convenience_matches_rig_run():
    profile = hold(60.0, 2.0)
    rigs = [build_calibrated_monitor(seed=s, fast=True).rig for s in (11, 12)]
    batched = run_batch(rigs, profile)
    fresh = [build_calibrated_monitor(seed=s, fast=True).rig for s in (11, 12)]
    scalar = RunResult.from_records(
        [rig.run(profile, record_every_n=20) for rig in fresh])
    _assert_parity(batched, scalar)


def test_batch_engine_refuses_empty_fleet():
    with pytest.raises(ConfigurationError):
        BatchEngine([])


def test_batch_engine_refuses_heterogeneous_fleet():
    rig_a = build_calibrated_monitor(seed=21, fast=True).rig
    rig_b = build_calibrated_monitor(seed=22, fast=True,
                                     overtemperature_k=8.0).rig
    with pytest.raises(ConfigurationError):
        BatchEngine([rig_a, rig_b])


def test_session_unknown_engine_rejected():
    with Session(n_monitors=1, seed=5, fast_calibration=True) as session:
        session.calibrate()
        with pytest.raises(ConfigurationError):
            session.run(hold(50.0, 1.0), engine="quantum")


def test_session_lifecycle_enforced():
    session = Session(n_monitors=1, seed=5, fast_calibration=True)
    with pytest.raises(SessionError):
        session.run(hold(50.0, 1.0))  # not even open
    with pytest.raises(SessionError):
        session.calibrate()  # must open first
    session.open()
    with pytest.raises(SessionError):
        session.monitors  # not calibrated yet
    handles = session.calibrate()
    assert [h.index for h in handles] == [0]
    session.close()
    assert session.state == "closed"
    with pytest.raises(SessionError):
        session.run(hold(50.0, 1.0))


def test_session_runs_are_repeatable():
    profile = hold(90.0, 2.0)
    with Session(n_monitors=2, seed=31, fast_calibration=True) as session:
        session.calibrate()
        first = session.run(profile)
        second = session.run(profile)
    for name in RunResult.STACKED_FIELDS:
        assert np.array_equal(getattr(first, name), getattr(second, name))


def test_run_result_trace_roundtrip():
    with Session(n_monitors=2, seed=8, fast_calibration=True) as session:
        session.calibrate()
        result = session.run(hold(70.0, 1.5))
    assert result.n_monitors == 2
    record = result.trace(1)
    assert np.array_equal(record.measured_mps, result.measured_mps[1])
    summary = result.summary(monitor=0)
    assert np.isfinite(summary["run.measured_mps"]["mean"])
