"""Tests for the PSD estimator and its use on the analog models."""

import numpy as np
import pytest

from repro.analysis.psd import flicker_corner_hz, welch_psd, white_floor
from repro.errors import ConfigurationError
from repro.isif.afe import AFEConfig, AnalogFrontEnd

FS = 1000.0


def test_validation():
    with pytest.raises(ConfigurationError):
        welch_psd(np.zeros(10), FS)
    with pytest.raises(ConfigurationError):
        welch_psd(np.zeros(1000), -1.0)
    r = welch_psd(np.random.default_rng(0).normal(size=4096), FS)
    with pytest.raises(ConfigurationError):
        r.band_power(10.0, 5.0)


def test_white_noise_psd_level():
    """White noise of variance sigma^2 has PSD = sigma^2 / (fs/2)."""
    rng = np.random.default_rng(1)
    sigma = 0.5
    x = rng.normal(0.0, sigma, 1 << 16)
    result = welch_psd(x, FS)
    expected = sigma**2 / (FS / 2.0)
    assert white_floor(result) == pytest.approx(expected, rel=0.1)
    # Parseval: total band power equals the variance.
    assert result.band_power(0.0, FS / 2.0) == pytest.approx(sigma**2,
                                                             rel=0.1)


def test_tone_shows_as_band_power():
    t = np.arange(1 << 14) / FS
    x = np.sin(2 * np.pi * 100.0 * t) + \
        np.random.default_rng(2).normal(0.0, 0.01, t.size)
    result = welch_psd(x, FS)
    in_band = result.band_power(90.0, 110.0)
    out_band = result.band_power(200.0, 400.0)
    assert in_band == pytest.approx(0.5, rel=0.1)  # sine power A^2/2
    assert in_band > 100.0 * out_band


def test_flicker_corner_of_synthetic_pink_plus_white():
    """1/f + white with a known crossover is recovered within ~2x."""
    rng = np.random.default_rng(3)
    n = 1 << 16
    white = rng.normal(0.0, 1.0, n)
    # Shape 1/f in the frequency domain.
    spectrum = np.fft.rfft(rng.normal(0.0, 1.0, n))
    f = np.fft.rfftfreq(n, 1.0 / FS)
    f[0] = f[1]
    corner = 20.0
    pink = np.fft.irfft(spectrum * np.sqrt(corner / f), n)
    pink *= 1.0 / np.std(pink)
    x = white + pink
    result = welch_psd(x, FS)
    measured = flicker_corner_hz(result)
    assert 5.0 < measured < 80.0


def test_pure_white_has_no_corner():
    x = np.random.default_rng(4).normal(size=1 << 14)
    result = welch_psd(x, FS)
    assert flicker_corner_hz(result) < 2.0  # essentially none


def test_afe_noise_spectrum_matches_model():
    """The AFE's output noise: white floor set by the density x gain,
    plus a visible 1/f rise below the configured corner."""
    cfg = AFEConfig(gain_index=4, offset_v=0.0,
                    noise_density_v_per_rthz=20e-9,
                    flicker_corner_hz=10.0)
    afe = AnalogFrontEnd(cfg, rng=np.random.default_rng(5))
    dt = 1.0 / FS
    x = np.array([afe.process(0.0, dt) for _ in range(1 << 15)])
    result = welch_psd(x, FS)
    floor = white_floor(result)
    expected_density = (20e-9 * cfg.gain) ** 2  # V^2/Hz at the output
    assert floor == pytest.approx(expected_density, rel=0.5)
    # Low-frequency excess exists (the 1/f component).
    low = float(np.mean(result.psd[(result.frequencies_hz > 0.5)
                                   & (result.frequencies_hz < 5.0)]))
    assert low > 1.5 * floor
