"""Tests for RigRecord persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.station.rig import RigRecord


def sample_record(n=50):
    rng = np.random.default_rng(0)
    return RigRecord(
        time_s=np.arange(n, dtype=float) * 0.02,
        true_speed_mps=rng.uniform(0.0, 2.5, n),
        reference_mps=rng.uniform(0.0, 2.5, n),
        measured_mps=rng.uniform(0.0, 2.5, n),
        direction=rng.choice([-1, 0, 1], n).astype(float),
        pressure_pa=rng.uniform(1e5, 3e5, n),
        temperature_k=rng.uniform(285.0, 295.0, n),
        bubble_coverage=rng.uniform(0.0, 0.1, n),
    )


def test_roundtrip(tmp_path):
    record = sample_record()
    path = tmp_path / "run.npz"
    record.save(path)
    restored = RigRecord.load(path)
    for name in RigRecord.FIELDS:
        assert np.array_equal(getattr(restored, name), getattr(record, name))
    assert len(restored) == len(record)


def test_load_rejects_incomplete_archive(tmp_path):
    path = tmp_path / "partial.npz"
    np.savez(path, time_s=np.arange(3.0))
    with pytest.raises(ConfigurationError):
        RigRecord.load(path)


def test_window_after_reload(tmp_path):
    record = sample_record()
    path = tmp_path / "run.npz"
    record.save(path)
    window = RigRecord.load(path).steady_window(0.2, 0.6)
    assert len(window) > 0
    assert np.all(window.time_s >= 0.2)
