"""Unit tests for the APB address map."""

import pytest

from repro.errors import RegisterError
from repro.isif.bus import AddressMap, Mapping
from repro.isif.platform import ISIFPlatform
from repro.isif.registers import Field, Register, RegisterFile


def make_block(name):
    rf = RegisterFile(name)
    rf.add(Register("CTRL", 0x0, reset=0x1, fields=(Field("EN", 0, 1),)))
    rf.add(Register("DATA", 0x4))
    return rf


def test_mapping_validation():
    with pytest.raises(RegisterError):
        Mapping(0x2, 0x100, make_block("a"))  # unaligned
    with pytest.raises(RegisterError):
        Mapping(0x0, 0, make_block("a"))      # empty


def test_mount_and_dispatch():
    bus = AddressMap()
    bus.mount(0x1000, 0x100, make_block("blk_a"))
    bus.mount(0x2000, 0x100, make_block("blk_b"))
    assert bus.read(0x1000) == 0x1
    bus.write(0x2004, 0xDEAD)
    assert bus.read(0x2004) == 0xDEAD
    assert bus.read(0x1004) == 0x0  # isolated


def test_overlap_rejected():
    bus = AddressMap()
    bus.mount(0x1000, 0x100, make_block("a"))
    with pytest.raises(RegisterError):
        bus.mount(0x1080, 0x100, make_block("b"))


def test_bus_error_on_hole_and_unaligned():
    bus = AddressMap()
    bus.mount(0x1000, 0x100, make_block("a"))
    with pytest.raises(RegisterError):
        bus.read(0x3000)
    with pytest.raises(RegisterError):
        bus.read(0x1002)


def test_memory_map_listing():
    bus = AddressMap()
    bus.mount(0x1000, 0x100, make_block("blk_a"))
    listing = bus.memory_map_listing()
    assert "blk_a" in listing
    assert "0x00001000" in listing


def test_platform_exposes_channels_on_the_bus():
    """Drive a channel's gain through the absolute APB address, as a
    LEON driver would, and see the configuration take effect."""
    p = ISIFPlatform.for_anemometer()
    ctrl_addr = 0x4000_0000  # ch0 CTRL
    word = p.bus.read(ctrl_addr)
    # GAIN field is bits [4:2]; set it to 1 via a bus read-modify-write.
    word = (word & ~(0b111 << 2)) | (1 << 2)
    p.bus.write(ctrl_addr, word)
    p.channels[0].apply_registers()
    assert p.channels[0].config.afe.gain_index == 1
    # Four windows mounted, in order.
    assert len(p.bus.windows()) == 4
