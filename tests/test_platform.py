"""Unit tests for the assembled ISIF platform."""

import pytest

from repro.errors import ConfigurationError
from repro.isif.channel import ChannelConfig
from repro.isif.platform import NUM_CHANNELS, ISIFPlatform


def test_validation():
    with pytest.raises(ConfigurationError):
        ISIFPlatform(loop_rate_hz=0.0)
    with pytest.raises(ConfigurationError):
        ISIFPlatform(channel_configs=[None])  # wrong count


def test_four_channels():
    """§3: 'ISIF analog section features 4 dedicated input channels'."""
    p = ISIFPlatform()
    assert len(p.channels) == NUM_CHANNELS == 4
    assert [c.name for c in p.channels] == ["ch0", "ch1", "ch2", "ch3"]


def test_channel_rates_forced_to_loop_rate():
    cfg = ChannelConfig(sample_rate_hz=123.0)
    p = ISIFPlatform(loop_rate_hz=2000.0, channel_configs=[cfg, None, None, None])
    assert all(c.config.sample_rate_hz == 2000.0 for c in p.channels)


def test_dac_complement():
    """§3: 'configurable 12 bit and 10 bit thermometer DACs'."""
    p = ISIFPlatform()
    assert p.supply_dac_a.bits == 12
    assert p.supply_dac_b.bits == 12
    assert p.trim_dac.bits == 10


def test_drive_bridges_quantises_to_dac():
    p = ISIFPlatform()
    va, vb = p.drive_bridges(2.345, 1.234)
    assert va == pytest.approx(2.345, abs=2 * p.supply_dac_a.lsb_v)
    assert vb == pytest.approx(1.234, abs=2 * p.supply_dac_b.lsb_v)


def test_acquire_bridges_input_referred():
    p = ISIFPlatform.for_anemometer()
    a = b = 0.0
    for _ in range(300):
        a, b = p.acquire_bridges(0.004, -0.003)
    # The untrimmed AFE offset (0.5 mV input-referred) is part of the
    # reading — the CTA loop absorbs it, the channel does not hide it.
    assert a == pytest.approx(0.004, abs=8e-4)
    assert b == pytest.approx(-0.003, abs=8e-4)


def test_self_test_passes_on_healthy_platform():
    p = ISIFPlatform.for_anemometer()
    report = p.self_test()
    assert report["amplitude_error"] < 0.10
    assert report["tone_hz"] > 0.0


def test_independent_seeds_per_instance():
    a = ISIFPlatform(seed=1)
    b = ISIFPlatform(seed=2)
    assert a.supply_dac_a.ideal_output(100) != b.supply_dac_a.ideal_output(100)


def test_dt_property_consistency():
    p = ISIFPlatform(loop_rate_hz=500.0)
    assert p.dt_s == pytest.approx(2e-3)
