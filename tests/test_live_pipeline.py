"""Snapshot-pipeline tests: delta algebra, the ring buffer, the sampler.

The load-bearing claim is the merge identity — for two successive
cumulative dumps ``old``/``new`` of one registry,
``merge_states(old[name], delta[name]) == new[name]`` exactly for every
instrument the delta emits — because every downstream consumer (the
``/snapshot`` endpoint, ``repro top`` rates) assumes ring samples can
be folded back into cumulative state losslessly.
"""

import threading

import pytest

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.observability import EventLog, MetricsRegistry, Tracer
from repro.observability.live import SnapshotPipeline, snapshot_delta
from repro.observability.metrics import merge_states

pytestmark = pytest.mark.live


@pytest.fixture
def fresh():
    """Swap in fresh default registry/tracer/log; restore afterwards."""
    old_reg = obs.get_registry()
    old_tr = obs.get_tracer()
    old_log = obs.get_event_log()
    registry = obs.set_registry(MetricsRegistry(enabled=True))
    tracer = obs.set_tracer(Tracer(enabled=True))
    log = obs.set_event_log(EventLog(enabled=True))
    yield registry, tracer, log
    obs.set_registry(old_reg)
    obs.set_tracer(old_tr)
    obs.set_event_log(old_log)


def exercise(registry, phase):
    """Mutate a mixed instrument population, differently per phase."""
    registry.counter("t.count").inc(3 + phase)
    registry.gauge("t.gauge").set(0.25 * (phase + 1))
    h = registry.histogram("t.hist", reservoir_size=8)
    for i in range(5 + 3 * phase):
        h.observe(float(i + 10 * phase))


# -- the delta algebra --------------------------------------------------------


def test_delta_merge_identity_across_phases(fresh):
    """merge_states(old, delta) == new, instrument by instrument."""
    registry, _, _ = fresh
    exercise(registry, 0)
    old = registry.dump()
    exercise(registry, 1)
    new = registry.dump()
    delta = snapshot_delta(old, new)
    assert set(delta) == {"t.count", "t.gauge", "t.hist"}
    for name, d in delta.items():
        assert merge_states(old[name], d) == new[name], name


def test_delta_skips_unchanged_counters_and_histograms(fresh):
    registry, _, _ = fresh
    exercise(registry, 0)
    old = registry.dump()
    registry.counter("t.count").inc(2)  # only the counter moves
    new = registry.dump()
    delta = snapshot_delta(old, new)
    assert delta["t.count"] == {"type": "counter", "value": 2}
    assert "t.hist" not in delta
    # Gauges always re-emit: their merge is last-write-wins, so the
    # delta IS the state and the identity holds trivially.
    assert delta["t.gauge"] == new["t.gauge"]


def test_delta_rebaselines_on_registry_reset(fresh):
    registry, _, _ = fresh
    registry.counter("t.count").inc(10)
    old = registry.dump()
    fresh_registry = MetricsRegistry(enabled=True)
    fresh_registry.counter("t.count").inc(4)  # went "backwards"
    new = fresh_registry.dump()
    delta = snapshot_delta(old, new)
    assert delta["t.count"] == new["t.count"]  # full state, not -6


def test_delta_on_fresh_instrument_is_full_state(fresh):
    registry, _, _ = fresh
    old = registry.dump()
    assert old == {}
    exercise(registry, 0)
    new = registry.dump()
    delta = snapshot_delta(old, new)
    assert delta == new
    for name in delta:
        assert merge_states(None, delta[name]) == new[name]


def test_histogram_delta_reservoir_is_the_new_tail(fresh):
    registry, _, _ = fresh
    h = registry.histogram("t.tail", reservoir_size=4)
    for v in (1.0, 2.0):
        h.observe(v)
    old = registry.dump()
    for v in (3.0, 4.0, 5.0):
        h.observe(v)
    new = registry.dump()
    d = snapshot_delta(old, new)["t.tail"]
    assert d["count"] == 3 and d["sum"] == 12.0
    assert d["reservoir"] == [3.0, 4.0, 5.0]
    assert merge_states(old["t.tail"], d) == new["t.tail"]


# -- the pipeline -------------------------------------------------------------


def test_manual_sampling_is_deterministic_with_injected_clock(fresh):
    registry, _, _ = fresh
    ticks = iter(range(100))
    pipe = SnapshotPipeline(cadence_s=0.5, retention=8,
                            registry=registry, clock=lambda: next(ticks))
    exercise(registry, 0)
    first = pipe.sample()
    exercise(registry, 1)
    second = pipe.sample()
    assert (first.seq, first.t_s) == (0, 0.0)
    assert (second.seq, second.t_s) == (1, 1.0)
    # Folding the deltas in order reproduces the cumulative dump.
    state = {}
    for sample in pipe.window():
        for name, d in sample.delta.items():
            state[name] = merge_states(state.get(name), d)
    assert state == pipe.latest_metrics() == registry.dump()


def test_ring_retention_evicts_oldest_but_seq_survives(fresh):
    registry, _, _ = fresh
    pipe = SnapshotPipeline(retention=3, registry=registry,
                            clock=lambda: 0.0)
    for i in range(7):
        registry.counter("t.count").inc()
        pipe.sample()
    assert len(pipe) == 3
    window = pipe.window()
    assert [s.seq for s in window] == [4, 5, 6]
    assert pipe.window(last=2) == window[-2:]
    assert pipe.latest().seq == 6
    with pytest.raises(ConfigurationError):
        pipe.window(last=0)


def test_raising_source_is_contained_and_counted(fresh):
    registry, _, _ = fresh
    def boom():
        raise RuntimeError("source down")
    pipe = SnapshotPipeline(registry=registry, clock=lambda: 0.0,
                            sources={"ok": lambda: {"x": 1}, "bad": boom})
    sample = pipe.sample()
    assert sample.extra["ok"] == {"x": 1}
    assert "RuntimeError" in sample.extra["bad"]["error"]
    assert pipe.errors == 1
    payload = pipe.payload()
    assert payload["errors"] == 1
    assert payload["count"] == 1


def test_payload_shape_and_json_safety(fresh):
    import json
    registry, _, _ = fresh
    pipe = SnapshotPipeline(cadence_s=0.25, retention=16,
                            registry=registry, clock=lambda: 1.5)
    exercise(registry, 0)
    pipe.sample()
    payload = pipe.payload(last=1)
    json.dumps(payload)  # must not raise
    assert payload["cadence_s"] == 0.25 and payload["retention"] == 16
    assert payload["count"] == 1
    assert payload["metrics"] == registry.dump()
    assert payload["samples"][0]["seq"] == 0
    assert payload["samples"][0]["delta"]["t.count"]["value"] == 3


def test_background_thread_samples_and_stops(fresh):
    registry, _, _ = fresh
    registry.counter("t.count").inc()
    done = threading.Event()
    samples_seen = []
    class Clock:
        def __call__(self):
            samples_seen.append(1)
            if len(samples_seen) >= 3:
                done.set()
            return float(len(samples_seen))
    with SnapshotPipeline(cadence_s=0.005, registry=registry,
                          clock=Clock()) as pipe:
        assert pipe.running
        assert done.wait(timeout=30.0)
    assert not pipe.running
    # stop() takes a final sample, so the ring is never empty here.
    assert len(pipe) >= 3
    assert pipe.latest_metrics() == registry.dump()


def test_pipeline_validates_configuration():
    with pytest.raises(ConfigurationError):
        SnapshotPipeline(cadence_s=0.0)
    with pytest.raises(ConfigurationError):
        SnapshotPipeline(retention=0)


def test_default_registry_is_resolved_at_sample_time(fresh):
    """A pipeline built before a registry swap samples the new default."""
    registry, _, _ = fresh
    pipe = SnapshotPipeline(clock=lambda: 0.0)
    registry.counter("t.count").inc(5)
    sample = pipe.sample()
    assert sample.delta["t.count"]["value"] == 5
