"""Property-based tests of the pipe-network solver (hypothesis).

Mass conservation must hold on *every* tree the builder can produce,
for any demand/leak assignment — the invariant the whole leak-detection
application rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.station.network import PipeNetwork


@st.composite
def random_tree(draw):
    """A random tree network with random demands and leaks."""
    n_nodes = draw(st.integers(min_value=1, max_value=8))
    demands = draw(st.lists(
        st.floats(min_value=0.0, max_value=2e-3),
        min_size=n_nodes, max_size=n_nodes))
    parents = [draw(st.integers(min_value=0, max_value=i))
               for i in range(n_nodes)]
    net = PipeNetwork()
    names = ["reservoir"]
    for i in range(n_nodes):
        parent = names[parents[i]]
        name = f"n{i}"
        net.add_pipe(parent, name, demand_m3_s=demands[i])
        names.append(name)
    n_leaks = draw(st.integers(min_value=0, max_value=min(3, n_nodes)))
    pipes = net.pipes
    for k in range(n_leaks):
        idx = draw(st.integers(min_value=0, max_value=len(pipes) - 1))
        net.inject_leak(*pipes[idx],
                        draw(st.floats(min_value=0.0, max_value=5e-4)))
    return net, demands


@settings(max_examples=60, deadline=None)
@given(random_tree())
def test_mass_conservation_everywhere(tree):
    """At every junction: inflow == demand + sum of child inflows."""
    net, demands = tree
    flows = net.solve()
    area = {e: np.pi * (net._graph.edges[e]["diameter_m"] / 2.0) ** 2
            for e in net._graph.edges}
    # Volumetric flow into each node.
    q_in = {down: flows[(up, down)].outlet_speed_mps * area[(up, down)]
            for up, down in net._graph.edges}
    for node in net._graph.nodes:
        if node == net.source:
            continue
        demand = net._graph.nodes[node]["demand_m3_s"]
        children_q = sum(
            flows[(node, child)].inlet_speed_mps * area[(node, child)]
            + 0.0
            for _, child in net._graph.out_edges(node))
        assert q_in[node] == pytest.approx(demand + children_q, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(random_tree())
def test_leaks_only_raise_upstream_flows(tree):
    """Every pipe's inlet >= outlet, difference exactly its leak."""
    net, _ = tree
    flows = net.solve()
    for (up, down), flow in flows.items():
        assert flow.inlet_speed_mps >= flow.outlet_speed_mps - 1e-15
        area = np.pi * (net._graph.edges[(up, down)]["diameter_m"] / 2.0) ** 2
        assert (flow.inlet_speed_mps - flow.outlet_speed_mps) * area == \
            pytest.approx(flow.leak_m3_s, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(random_tree())
def test_total_supply_equals_demands_plus_leaks(tree):
    net, demands = tree
    total_leaks = sum(net._leaks.values())
    assert net.total_supply_m3_s() == pytest.approx(
        sum(demands) + total_leaks, abs=1e-12)
