"""Unit tests for the direction detector."""

import pytest

from repro.conditioning.direction import DirectionConfig, DirectionDetector
from repro.errors import ConfigurationError


def feed(det, u_a, u_b, n=3000):
    out = 0
    for _ in range(n):
        out = det.update(u_a, u_b)
    return out


def test_config_validation():
    with pytest.raises(ConfigurationError):
        DirectionConfig(threshold=0.0)
    with pytest.raises(ConfigurationError):
        DirectionConfig(hysteresis=-1.0)


def test_asymmetry_formula():
    assert DirectionDetector.asymmetry(2.0, 2.0) == 0.0
    assert DirectionDetector.asymmetry(2.0, 0.0) == 1.0
    assert DirectionDetector.asymmetry(0.0, 2.0) == -1.0
    assert DirectionDetector.asymmetry(0.0, 0.0) == 0.0


def test_forward_flow_detected():
    det = DirectionDetector()
    # A works harder (upstream): u_a > u_b.
    assert feed(det, 2.50, 2.45) == 1


def test_reverse_flow_detected():
    det = DirectionDetector()
    assert feed(det, 2.45, 2.50) == -1


def test_balanced_supplies_undecided():
    det = DirectionDetector()
    assert feed(det, 2.50, 2.50) == 0


def test_offset_compensation():
    """Heater mismatch looks like flow; the calibration offset fixes it."""
    mismatch = 0.02
    naive = DirectionDetector()
    assert feed(naive, 2.5 * (1 + mismatch), 2.5) == 1  # false forward
    corrected = DirectionDetector(DirectionConfig(
        offset=DirectionDetector.asymmetry(2.5 * (1 + mismatch), 2.5)))
    assert feed(corrected, 2.5 * (1 + mismatch), 2.5) == 0


def test_hysteresis_prevents_chatter():
    cfg = DirectionConfig(threshold=0.004, hysteresis=0.004)
    det = DirectionDetector(cfg)
    feed(det, 2.52, 2.48)  # claim forward
    assert det.direction == 1
    # A small reverse excursion below the flip threshold must not flip.
    feed(det, 2.495, 2.505, n=3000)
    assert det.direction == 1
    # A strong reverse must flip.
    feed(det, 2.40, 2.60, n=3000)
    assert det.direction == -1


def test_reset():
    det = DirectionDetector()
    feed(det, 2.6, 2.4)
    det.reset()
    assert det.direction == 0
