"""Unit tests for the water-line plant."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.station.line import LineConfig, WaterLine


def test_validation():
    with pytest.raises(ConfigurationError):
        LineConfig(pipe_diameter_m=0.0)
    with pytest.raises(ConfigurationError):
        LineConfig(speed_tau_s=-1.0)
    with pytest.raises(ConfigurationError):
        WaterLine(turbulence_multiplier=0.0)
    with pytest.raises(ConfigurationError):
        WaterLine().step(0.0, 1.0)


def test_speed_approaches_target_with_lag():
    line = WaterLine(LineConfig(speed_tau_s=1.5))
    dt = 1e-2
    state = None
    for _ in range(int(1.5 / dt)):  # one time constant
        state = line.step(dt, 1.0)
    assert state.bulk_speed_mps == pytest.approx(0.63, abs=0.05)
    for _ in range(int(10.0 / dt)):
        state = line.step(dt, 1.0)
    assert state.bulk_speed_mps == pytest.approx(1.0, abs=0.01)


def test_pressure_faster_than_speed():
    line = WaterLine()
    dt = 1e-2
    for _ in range(60):  # 0.6 s
        state = line.step(dt, 1.0, pressure_target_pa=5e5)
    p_progress = (state.pressure_pa - 2e5) / 3e5
    v_progress = state.bulk_speed_mps / 1.0
    assert p_progress > v_progress


def test_temperature_is_slowest():
    line = WaterLine()
    state = line.step(1.0, 0.0, temperature_target_k=298.15)
    assert state.temperature_k < 290.0  # barely moved after 1 s


def test_local_speed_fluctuates_around_bulk():
    line = WaterLine()
    line.jump_to(1.0)
    dt = 1e-3
    locals_, bulks = [], []
    for _ in range(20000):
        s = line.step(dt, 1.0)
        locals_.append(s.local_speed_mps)
        bulks.append(s.bulk_speed_mps)
    locals_ = np.array(locals_)
    assert np.mean(locals_) == pytest.approx(1.0, abs=0.02)
    assert np.std(locals_) > 0.01  # turbulence present
    assert np.std(np.array(bulks)) < np.std(locals_)


def test_turbulence_multiplier_scales_noise():
    smooth = WaterLine(LineConfig(seed=1), turbulence_multiplier=1.0)
    rough = WaterLine(LineConfig(seed=1), turbulence_multiplier=2.5)
    smooth.jump_to(1.0)
    rough.jump_to(1.0)
    dt = 1e-3
    s_dev = np.std([smooth.step(dt, 1.0).local_speed_mps for _ in range(10000)])
    r_dev = np.std([rough.step(dt, 1.0).local_speed_mps for _ in range(10000)])
    assert r_dev > 1.5 * s_dev


def test_jump_to_fast_forwards():
    line = WaterLine()
    line.jump_to(2.0, 3e5, 290.0)
    state = line.step(1e-3, 2.0, 3e5, 290.0)
    assert state.bulk_speed_mps == pytest.approx(2.0, abs=1e-3)


def test_conditions_packaging():
    line = WaterLine()
    state = line.step(1e-3, 1.0)
    cond = line.conditions(state)
    assert cond.speed_mps == state.local_speed_mps
    assert cond.pressure_pa == state.pressure_pa
    assert cond.chemistry is line.config.chemistry


def test_time_advances():
    line = WaterLine()
    for _ in range(10):
        line.step(0.1, 0.0)
    assert line.time_s == pytest.approx(1.0)
