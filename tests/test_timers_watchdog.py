"""Unit tests for the timer and watchdog peripherals."""

import pytest

from repro.errors import ConfigurationError
from repro.isif.timers import PeriodicTimer, Watchdog, WatchdogReset


def test_timer_validation():
    with pytest.raises(ConfigurationError):
        PeriodicTimer(0.0)
    with pytest.raises(ConfigurationError):
        PeriodicTimer(1.0).advance(-1.0)


def test_timer_fires_on_schedule():
    t = PeriodicTimer(0.1)
    assert t.advance(0.05) == 0
    assert t.advance(0.05) == 1
    assert t.fire_count == 1


def test_timer_multiple_fires_in_one_advance():
    t = PeriodicTimer(0.1)
    assert t.advance(0.35) == 3


def test_timer_callback():
    calls = []
    t = PeriodicTimer(0.1, callback=lambda: calls.append(1))
    t.advance(0.25)
    assert len(calls) == 2


def test_timer_restart():
    t = PeriodicTimer(0.1)
    t.advance(0.09)
    t.restart()
    assert t.advance(0.09) == 0  # full period reloaded


def test_watchdog_serviced_loop_never_resets():
    wd = Watchdog(timeout_s=0.5)
    for _ in range(100):
        wd.kick()
        wd.advance(0.1)
    assert wd.reset_count == 0


def test_watchdog_expires_on_hang():
    wd = Watchdog(timeout_s=0.5)
    wd.kick()
    with pytest.raises(WatchdogReset):
        for _ in range(10):
            wd.advance(0.1)  # firmware hung: no kicks
    assert wd.reset_count == 1


def test_watchdog_recovers_after_reset():
    wd = Watchdog(timeout_s=0.2)
    with pytest.raises(WatchdogReset):
        wd.advance(0.3)
    # After "reset" the system reboots and services again.
    wd.kick()
    wd.advance(0.1)
    assert wd.reset_count == 1


def test_watchdog_disabled_in_deep_sleep():
    wd = Watchdog(timeout_s=0.1)
    wd.enable(False)
    wd.advance(10.0)  # deep sleep: no reset
    wd.enable(True)
    with pytest.raises(WatchdogReset):
        wd.advance(0.2)


def test_watchdog_validation():
    with pytest.raises(ConfigurationError):
        Watchdog(0.0)
    with pytest.raises(ConfigurationError):
        Watchdog(1.0).advance(-1.0)
