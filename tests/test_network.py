"""Unit tests for the pipe-network substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.station.network import PipeNetwork

DN50_AREA = np.pi * 0.025**2


def simple_network():
    """reservoir -> A -> B, with a spur A -> C."""
    net = PipeNetwork()
    net.add_pipe("reservoir", "A", demand_m3_s=0.0)
    net.add_pipe("A", "B", demand_m3_s=1.0e-3)
    net.add_pipe("A", "C", demand_m3_s=0.5e-3)
    return net


def test_construction_validation():
    net = PipeNetwork()
    with pytest.raises(ConfigurationError):
        net.add_pipe("ghost", "A")
    net.add_pipe("reservoir", "A")
    with pytest.raises(ConfigurationError):
        net.add_pipe("reservoir", "A")  # duplicate node
    with pytest.raises(ConfigurationError):
        net.add_pipe("A", "B", diameter_m=-1.0)


def test_mass_balance_no_leak():
    net = simple_network()
    flows = net.solve()
    trunk = flows[("reservoir", "A")]
    # Trunk carries both demands; no leak -> inlet == outlet.
    assert trunk.inlet_speed_mps == pytest.approx(1.5e-3 / DN50_AREA)
    assert trunk.outlet_speed_mps == pytest.approx(trunk.inlet_speed_mps)
    assert flows[("A", "B")].outlet_speed_mps == pytest.approx(
        1.0e-3 / DN50_AREA)


def test_leak_shows_as_segment_imbalance():
    net = simple_network()
    net.inject_leak("A", "B", 0.2e-3)
    flows = net.solve()
    leaky = flows[("A", "B")]
    assert leaky.inlet_speed_mps > leaky.outlet_speed_mps
    imbalance_q = (leaky.inlet_speed_mps - leaky.outlet_speed_mps) * DN50_AREA
    assert imbalance_q == pytest.approx(0.2e-3)
    # Upstream of the leak, the trunk carries the extra water...
    assert flows[("reservoir", "A")].inlet_speed_mps == pytest.approx(
        1.7e-3 / DN50_AREA)
    # ...but the healthy spur is untouched.
    clean = flows[("A", "C")]
    assert clean.inlet_speed_mps == pytest.approx(clean.outlet_speed_mps)


def test_leak_can_be_closed():
    net = simple_network()
    net.inject_leak("A", "B", 0.2e-3)
    net.inject_leak("A", "B", 0.0)
    flows = net.solve()
    seg = flows[("A", "B")]
    assert seg.inlet_speed_mps == pytest.approx(seg.outlet_speed_mps)


def test_demand_update():
    net = simple_network()
    net.set_demand("B", 2.0e-3)
    flows = net.solve()
    assert flows[("A", "B")].outlet_speed_mps == pytest.approx(
        2.0e-3 / DN50_AREA)
    with pytest.raises(ConfigurationError):
        net.set_demand("reservoir", 1.0)
    with pytest.raises(ConfigurationError):
        net.set_demand("B", -1.0)


def test_total_supply_includes_leaks():
    net = simple_network()
    base = net.total_supply_m3_s()
    net.inject_leak("A", "C", 0.3e-3)
    assert net.total_supply_m3_s() == pytest.approx(base + 0.3e-3)


def test_leak_validation():
    net = simple_network()
    with pytest.raises(ConfigurationError):
        net.inject_leak("B", "A", 1.0)  # no such pipe direction
    with pytest.raises(ConfigurationError):
        net.inject_leak("A", "B", -1.0)


def test_pipes_listing_topological():
    net = simple_network()
    pipes = net.pipes
    assert pipes[0] == ("reservoir", "A")
    assert set(pipes[1:]) == {("A", "B"), ("A", "C")}
