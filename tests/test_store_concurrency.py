"""Concurrent artifact-store stress: N processes race one key.

The store's claim is lock-free safety: workers racing the same
calibration key may each pay the campaign, but the atomic
write-then-rename means the directory always holds exactly one valid
artifact, a reader never sees a torn file, and post-race lookups are
pure hits.  The workers pick the store up from the ``REPRO_STORE``
environment variable (no plumbing) and ship their counters home
through the worker-telemetry harvest, so the parent can assert the
merged ``store.*`` tallies across the whole race.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import pytest

from repro.observability import MetricsRegistry
from repro.observability.remote import (TelemetryRequest,
                                        harvest_worker_telemetry,
                                        install_worker_telemetry,
                                        merge_harvest)
from repro.store import ArtifactStore

pytestmark = [pytest.mark.durability, pytest.mark.parallel]

_RACERS = 4
_SEED = 777001


def _race_worker(barrier, queue, seed: int) -> None:
    """One racer: cold process, shared REPRO_STORE, same build key.

    Runs in a spawned interpreter, so the calibration LRU is empty and
    the build *must* consult the store.  Telemetry is collected under
    fresh sinks and shipped back for the parent to merge (the PR 5
    harvest path), alongside the calibration image for the bit-equality
    check.
    """
    previous = install_worker_telemetry(TelemetryRequest())
    try:
        from repro.station.scenarios import build_calibrated_monitor
        from repro.store import get_default_store

        barrier.wait(timeout=60)
        setup = build_calibrated_monitor(seed=seed, fast=True,
                                         use_pulsed_drive=False)
        harvest = harvest_worker_telemetry(previous)
        queue.put((pickle.dumps(harvest), setup.calibration.to_dict(),
                   get_default_store().stats()))
    except BaseException as exc:  # surface, don't hang the parent
        queue.put(exc)
        raise


def _counter_value(registry: MetricsRegistry, name: str) -> int:
    if name not in registry.names():
        return 0
    return int(registry.counter(name).value)


def test_racing_processes_converge_on_one_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    ctx = mp.get_context("spawn")
    barrier = ctx.Barrier(_RACERS)
    queue = ctx.Queue()
    workers = [ctx.Process(target=_race_worker, args=(barrier, queue, _SEED))
               for _ in range(_RACERS)]
    for worker in workers:
        worker.start()
    payloads = [queue.get(timeout=120) for _ in range(_RACERS)]
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    failures = [p for p in payloads if isinstance(p, BaseException)]
    assert not failures, failures

    # Exactly one valid artifact under the racing key; no torn temp files.
    store = ArtifactStore(tmp_path)
    keys = store.keys("calibration")
    assert len(keys) == 1, keys
    assert list(tmp_path.rglob(".tmp-*")) == []
    published = store.get("calibration", keys[0])
    assert published is not None  # decodes: header, version and key check

    # Every racer computed (or read) the same calibration, bit for bit.
    calibrations = [cal for _, cal, _ in payloads]
    assert all(cal == calibrations[0] for cal in calibrations)

    # Merge the harvests into one parent-side registry (the PR 5
    # telemetry path) and assert the fleet-wide tallies: every racer
    # did exactly one lookup, at least one missed and wrote, and
    # process-local stats agree with the merged registry.
    registry = MetricsRegistry(enabled=True)
    for blob, _, _ in payloads:
        merge_harvest(pickle.loads(blob), registry=registry)
    hits = _counter_value(registry, "store.hits")
    misses = _counter_value(registry, "store.misses")
    writes = _counter_value(registry, "store.writes")
    assert hits + misses == _RACERS
    assert misses >= 1
    assert writes == misses  # every miss recalibrated and published
    local = [stats for _, _, stats in payloads]
    assert sum(s["hits"] for s in local) == hits
    assert sum(s["misses"] for s in local) == misses
    assert sum(s["writes"] for s in local) == writes


def test_post_race_cold_process_is_a_pure_hit(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    ctx = mp.get_context("spawn")

    def run_one():
        barrier = ctx.Barrier(1)
        queue = ctx.Queue()
        worker = ctx.Process(target=_race_worker,
                             args=(barrier, queue, _SEED + 1))
        worker.start()
        payload = queue.get(timeout=120)
        worker.join(timeout=60)
        assert worker.exitcode == 0
        assert not isinstance(payload, BaseException), payload
        return payload

    _, first_cal, first_stats = run_one()
    assert first_stats == {**first_stats, "hits": 0, "misses": 1, "writes": 1}
    _, second_cal, second_stats = run_one()
    assert second_stats == {**second_stats,
                            "hits": 1, "misses": 0, "writes": 0}
    assert second_cal == first_cal
