"""Unit tests for the sweep harness and table formatter."""

import pytest

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.errors import ConfigurationError


def test_sweep_cartesian_order():
    seen = []

    def evaluate(a, b):
        seen.append((a, b))
        return {"score": a * 10 + b}

    results = sweep({"a": [1, 2], "b": [3, 4]}, evaluate)
    assert [r.params for r in results] == [
        {"a": 1, "b": 3}, {"a": 1, "b": 4}, {"a": 2, "b": 3}, {"a": 2, "b": 4}]
    assert results[0].metrics == {"score": 13}
    assert seen == [(1, 3), (1, 4), (2, 3), (2, 4)]


def test_sweep_validation():
    with pytest.raises(ConfigurationError):
        sweep({}, lambda: {})
    with pytest.raises(ConfigurationError):
        sweep({"a": []}, lambda a: {})
    with pytest.raises(ConfigurationError):
        sweep({"a": [1]}, lambda a: 42)  # not a dict


def test_sweep_exceptions_propagate():
    def broken(a):
        raise ValueError("boom")

    with pytest.raises(ValueError):
        sweep({"a": [1]}, broken)


def test_format_table_basic():
    out = format_table(["name", "value"], [["x", 1.5], ["y", 0.25]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    assert any("1.5" in line for line in lines)
    # All rows share the same width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_format_table_validation():
    with pytest.raises(ConfigurationError):
        format_table([], [])
    with pytest.raises(ConfigurationError):
        format_table(["a"], [["x", "y"]])


def test_format_table_number_rendering():
    out = format_table(["v"], [[1234567.0], [0.0000123], [0.0]])
    assert "1.235e+06" in out
    assert "1.230e-05" in out
