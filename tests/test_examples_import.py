"""Smoke guard: every example stays importable.

Importing executes the module top level (imports + definitions) without
running ``main()`` — catching API drift between the library and the
examples without paying their runtime.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), \
        f"{path.name} must expose a main() entry point"


def test_expected_example_set_present():
    names = {p.stem for p in EXAMPLES}
    required = {
        "quickstart",
        "water_station_monitoring",
        "bubble_mitigation_study",
        "leak_detection_network",
        "design_space_exploration",
        "deployed_field_node",
        "sensor_health_diagnostics",
        "automotive_air_heritage",
    }
    assert required <= names
