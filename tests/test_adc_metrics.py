"""Tests for the ADC sine-test metrology."""

import numpy as np
import pytest

from repro.analysis.adc_metrics import sine_test
from repro.errors import ConfigurationError
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc

FS = 1000.0


def test_validation():
    with pytest.raises(ConfigurationError):
        sine_test(np.zeros(100), 10.0, FS)  # too short
    with pytest.raises(ConfigurationError):
        sine_test(np.zeros(1024), 600.0, FS)  # above Nyquist
    with pytest.raises(ConfigurationError):
        sine_test(np.zeros(1024), 10.0, FS)  # no signal at all


def test_ideal_quantiser_enob_close_to_bits():
    """A noiseless B-bit quantiser measures ENOB ≈ B."""
    n, bits = 4096, 12
    t = np.arange(n) / FS
    tone = 0.95 * np.sin(2 * np.pi * 37.3 * t)
    codes = np.round(tone * (2 ** (bits - 1) - 1))
    result = sine_test(codes, 37.3, FS)
    assert result.enob == pytest.approx(bits, abs=1.0)
    assert result.sfdr_db > 50.0


def test_known_snr_recovered():
    """Sine + white noise of known SNR: SNDR must match."""
    rng = np.random.default_rng(0)
    n = 8192
    t = np.arange(n) / FS
    amp, sigma = 1.0, 0.01
    x = amp * np.sin(2 * np.pi * 41.7 * t) + rng.normal(0.0, sigma, n)
    expected_snr = 10 * np.log10((amp**2 / 2) / sigma**2)
    result = sine_test(x, 41.7, FS)
    assert result.sndr_db == pytest.approx(expected_snr, abs=1.5)


def test_behavioral_adc_measures_near_configured_enob():
    enob_cfg = 14.0
    adc = BehavioralAdc(vref_v=2.5, enob=enob_cfg,
                        rng=np.random.default_rng(1))
    n = 4096
    t = np.arange(n) / FS
    stimulus = 2.2 * np.sin(2 * np.pi * 33.1 * t)
    codes = np.array([adc.convert(float(v)) for v in stimulus])
    result = sine_test(codes, 33.1, FS)
    # Stimulus at -1.1 dBFS: measured ENOB within ~1 bit of configured.
    assert result.enob == pytest.approx(enob_cfg, abs=1.2)


def test_bit_true_sigma_delta_enob_reasonable():
    """The 2nd-order OSR-128 modulator lands in the mid-teens ENOB class."""
    adc = SigmaDeltaAdc(vref_v=2.5, osr=128, thermal_noise_v=0.0,
                        rng=np.random.default_rng(2))
    n = 2048
    rate = 200.0  # conversions per second (each = OSR modulator clocks)
    t = np.arange(n) / rate
    stimulus = 1.8 * np.sin(2 * np.pi * 3.1 * t)
    codes = np.array([adc.convert(float(v)) for v in stimulus])
    result = sine_test(codes[200:], 3.1, rate)
    assert result.enob > 10.0
    assert result.sndr_db > 62.0
