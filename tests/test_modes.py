"""Tests for the CT/CC/CP operating modes (E9 substrate)."""

import pytest

from repro.conditioning.modes import (
    ConstantCurrentMode,
    ConstantPowerMode,
    ConstantTemperatureMode,
)
from repro.errors import ConfigurationError
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor


def fresh(seed=31):
    sensor = MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(seed=seed)
    return sensor, platform


def test_mode_validation():
    s, p = fresh()
    with pytest.raises(ConfigurationError):
        ConstantCurrentMode(s, p, current_a=-1.0)
    with pytest.raises(ConfigurationError):
        ConstantPowerMode(s, p, power_w=0.0)


def test_ct_mode_overtemperature_is_setpoint():
    s, p = fresh()
    mode = ConstantTemperatureMode(s, p)
    m = mode.measure(FlowConditions(speed_mps=1.0), settle_s=0.8)
    assert m.overtemperature_est_k == pytest.approx(5.0)
    assert m.heater_power_w > 1e-3


def test_cc_mode_holds_current():
    s, p = fresh()
    i0 = 0.020
    mode = ConstantCurrentMode(s, p, current_a=i0)
    m = mode.measure(FlowConditions(speed_mps=1.0), settle_s=0.8)
    r_total = s.bridge_a.r_series_ohm + 50.0
    assert m.supply_v == pytest.approx(i0 * r_total, rel=0.05)


def test_cp_mode_holds_power():
    s, p = fresh()
    p0 = 0.030
    mode = ConstantPowerMode(s, p, power_w=p0)
    m = mode.measure(FlowConditions(speed_mps=1.0), settle_s=0.8)
    assert m.heater_power_w == pytest.approx(p0, rel=0.05)


def test_cc_wire_temperature_falls_with_flow():
    """In CC mode the wire temperature floats down as flow cools it."""
    s, p = fresh()
    mode = ConstantCurrentMode(s, p, current_a=0.025)
    slow = mode.measure(FlowConditions(speed_mps=0.2), settle_s=0.8)
    fast = mode.measure(FlowConditions(speed_mps=2.0), settle_s=0.8)
    assert fast.overtemperature_est_k < slow.overtemperature_est_k


def test_all_modes_conductance_rises_with_flow():
    for factory in (
        lambda s, p: ConstantTemperatureMode(s, p),
        lambda s, p: ConstantCurrentMode(s, p, current_a=0.025),
        lambda s, p: ConstantPowerMode(s, p, power_w=0.030),
    ):
        s, p = fresh()
        mode = factory(s, p)
        g_slow = mode.measure(FlowConditions(speed_mps=0.3), 0.8).conductance_w_per_k
        g_fast = mode.measure(FlowConditions(speed_mps=2.0), 0.8).conductance_w_per_k
        assert g_fast > g_slow, mode.name


def test_ct_robust_to_fluid_temperature_cc_cp_not():
    """The paper's §2 claim, quantified: fluid warms 10 K and only CT's
    conductance observable stays put."""
    v = 1.0
    cold = FlowConditions(speed_mps=v, temperature_k=288.15)
    warm = FlowConditions(speed_mps=v, temperature_k=298.15)

    def drift_of(factory):
        s, p = fresh()
        mode = factory(s, p)
        g_cold = mode.measure(cold, 1.0).conductance_w_per_k
        g_warm = mode.measure(warm, 1.5).conductance_w_per_k
        return abs(g_warm - g_cold) / g_cold

    ct = drift_of(lambda s, p: ConstantTemperatureMode(s, p))
    cc = drift_of(lambda s, p: ConstantCurrentMode(s, p, current_a=0.025))
    cp = drift_of(lambda s, p: ConstantPowerMode(s, p, power_w=0.030))
    assert ct < 0.1
    assert cc > 3.0 * ct
    assert cp > 3.0 * ct
