"""Unit tests for the anti-alias filter."""

import numpy as np
import pytest
from scipy import signal

from repro.errors import ConfigurationError
from repro.isif.filters_analog import AntiAliasFilter


def test_validation():
    with pytest.raises(ConfigurationError):
        AntiAliasFilter(-1.0, 1000.0)
    with pytest.raises(ConfigurationError):
        AntiAliasFilter(600.0, 1000.0)  # above Nyquist


def test_dc_gain_unity():
    f = AntiAliasFilter(100.0, 1000.0)
    out = 0.0
    for _ in range(500):
        out = f.step(1.0)
    assert out == pytest.approx(1.0, abs=1e-6)


def test_step_matches_scipy_sosfilt():
    """The hand-rolled DF2T cascade must be bit-compatible with scipy."""
    f = AntiAliasFilter(80.0, 1000.0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=300)
    mine = np.array([f.step(float(v)) for v in x])
    sos = signal.butter(2, 80.0, fs=1000.0, output="sos")
    ref = signal.sosfilt(sos, x)
    assert np.allclose(mine, ref, atol=1e-12)


def test_attenuation_at_stopband():
    fs, fc = 1000.0, 50.0
    f = AntiAliasFilter(fc, fs)
    n = 2000
    t = np.arange(n) / fs
    tone = np.sin(2 * np.pi * 400.0 * t)
    out = f.process(tone)[500:]
    # 2nd-order butterworth at 8x corner: ~36 dB down.
    assert np.std(out) < 0.03 * np.std(tone)


def test_passband_flat():
    fs, fc = 1000.0, 100.0
    f = AntiAliasFilter(fc, fs)
    t = np.arange(4000) / fs
    tone = np.sin(2 * np.pi * 10.0 * t)
    out = f.process(tone)[1000:]
    amp = np.sqrt(2.0) * np.std(out)
    assert amp == pytest.approx(1.0, abs=0.01)


def test_reset_to_dc_value():
    f = AntiAliasFilter(100.0, 1000.0)
    f.reset(2.0)
    assert f.step(2.0) == pytest.approx(2.0, abs=1e-3)


def test_state_carries_across_blocks():
    f1 = AntiAliasFilter(50.0, 1000.0)
    f2 = AntiAliasFilter(50.0, 1000.0)
    x = np.random.default_rng(1).normal(size=200)
    whole = f1.process(x)
    split = np.concatenate([f2.process(x[:100]), f2.process(x[100:])])
    assert np.allclose(whole, split)
