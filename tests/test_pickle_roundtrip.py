"""Pickling coverage for every public config / dataclass / live object.

The sharded runtime ships rigs to worker processes by pickling, so
picklability is part of the public contract — not an accident.  Latent
hazards this suite guards against (both found and fixed while building
the sharded runtime): lambdas stored in scheduler tasks, and module
objects stored as instance attributes (``MAFSensor._medium``).

Beyond "pickle doesn't raise", the live-object tests assert the copy
*behaves* identically: a pickled rig must produce bit-identical traces
to its original, or process sharding would silently change results.
"""

import pickle

import numpy as np
import pytest

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig
from repro.conditioning.monitor import MonitorConfig
from repro.isif.afe import AFEConfig
from repro.isif.pi_controller import PIConfig
from repro.runtime import Numerics, RunResult
from repro.sensor.maf import FlowConditions, MAFConfig
from repro.station.fleet import MeterCharacter
from repro.station.line import LineConfig
from repro.station.profiles import Profile, Segment, hold, staircase
from repro.station.scenarios import build_calibrated_monitor
from repro.station.rig import RigRecord


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.mark.parametrize("config", [
    MAFConfig(),
    MonitorConfig(),
    CTAConfig(),
    PIConfig(kp=1.0, ki=10.0, dt_s=1e-3),
    AFEConfig(),
    LineConfig(),
    MeterCharacter(),
    Numerics(),
    Numerics(mode="fast"),
    hold(60.0, 2.0),
    staircase([0.0, 50.0, 120.0], dwell_s=3.0),
    Segment(duration_s=1.0, speed_mps=0.5),
], ids=lambda c: type(c).__name__ if not isinstance(c, Profile)
        else "Profile")
def test_config_dataclasses_roundtrip(config):
    copy = _roundtrip(config)
    assert copy == config


def test_rig_record_and_run_result_roundtrip():
    record = RigRecord(
        time_s=np.arange(3.0),
        true_speed_mps=np.ones(3), reference_mps=np.ones(3),
        measured_mps=np.ones(3), direction=np.ones(3),
        pressure_pa=np.ones(3), temperature_k=np.ones(3),
        bubble_coverage=np.zeros(3))
    copy = _roundtrip(record)
    assert np.array_equal(copy.time_s, record.time_s)
    result = RunResult.from_records([record, record])
    copy = _roundtrip(result)
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(copy, name)),
                              np.asarray(getattr(result, name))), name


@pytest.fixture(scope="module")
def setup():
    return build_calibrated_monitor(seed=4242, fast=True)


def test_calibration_roundtrip(setup):
    calibration = setup.calibration
    copy = _roundtrip(calibration)
    assert isinstance(copy, FlowCalibration)
    assert copy.to_dict() == calibration.to_dict()


def test_live_monitor_roundtrip_measures(setup):
    copy = _roundtrip(setup.monitor)
    m = copy.measure(FlowConditions(speed_mps=0.8), duration_s=0.3)
    assert np.isfinite(m.speed_mps)


def test_calibrated_setup_roundtrip(setup):
    copy = _roundtrip(setup)
    assert copy.calibration.to_dict() == setup.calibration.to_dict()


def test_pickled_rig_runs_bit_identically():
    # The load-bearing property for the sharded runtime: a pickled rig
    # is not just constructible, it reproduces the original bit for bit
    # (RNG streams, filter states, scheduler registrations all travel).
    profile = hold(70.0, 1.0)
    original = build_calibrated_monitor(seed=97, fast=True).rig
    copy = _roundtrip(original)
    rec_a = original.run(profile, record_every_n=20)
    rec_b = copy.run(profile, record_every_n=20)
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(rec_a, name)),
                              np.asarray(getattr(rec_b, name))), name


def test_pickled_sensor_rebinds_medium_module():
    sensor = build_calibrated_monitor(seed=97, fast=True).monitor.sensor
    copy = _roundtrip(sensor)
    # The medium module itself is unpicklable; __getstate__ swaps it
    # for its name and __setstate__ re-resolves the module.
    import types
    assert isinstance(copy._medium, types.ModuleType)
    assert copy._medium is sensor._medium
