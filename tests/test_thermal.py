"""Unit tests for the lumped thermal network."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.physics.thermal import ThermalNetwork, ThermalNode


def simple_net(c=1.0, g=0.5, t_amb=300.0):
    net = ThermalNetwork()
    net.add_node(ThermalNode("n", c, 290.0))
    net.couple_ambient("n", "amb", g)
    net.set_ambient("amb", t_amb)
    return net


def test_node_validation():
    with pytest.raises(ConfigurationError):
        ThermalNode("bad", -1.0)


def test_duplicate_node_rejected():
    net = ThermalNetwork()
    net.add_node(ThermalNode("a", 1.0))
    with pytest.raises(ConfigurationError):
        net.add_node(ThermalNode("a", 1.0))


def test_self_coupling_rejected():
    net = ThermalNetwork()
    net.add_node(ThermalNode("a", 1.0))
    with pytest.raises(ConfigurationError):
        net.couple("a", "a", 1.0)


def test_unknown_node_rejected():
    net = simple_net()
    with pytest.raises(ConfigurationError):
        net.temperature("ghost")
    with pytest.raises(ConfigurationError):
        net.step(0.1, powers={"ghost": 1.0})


def test_relaxation_to_ambient():
    net = simple_net(c=1.0, g=0.5, t_amb=300.0)
    for _ in range(4000):
        net.step(0.01)  # 20 time constants
    assert net.temperature("n") == pytest.approx(300.0, abs=1e-3)


def test_steady_state_with_power():
    net = simple_net(c=1.0, g=0.5, t_amb=300.0)
    temps = net.steady_state(powers={"n": 1.0})
    # T = T_amb + P/G
    assert temps["n"] == pytest.approx(302.0)


def test_transient_matches_analytic_single_pole():
    c, g, t_amb = 2.0, 0.5, 300.0
    net = simple_net(c=c, g=g, t_amb=t_amb)
    net.set_temperature("n", 290.0)
    dt = 1e-3  # small vs tau = 4 s: implicit Euler error negligible
    for _ in range(1000):
        net.step(dt)
    t_sim = net.temperature("n")
    t_exact = t_amb + (290.0 - t_amb) * np.exp(-1.0 * g / c)
    assert t_sim == pytest.approx(t_exact, abs=0.01)


def test_two_node_heat_flows_downhill():
    net = ThermalNetwork()
    net.add_node(ThermalNode("hot", 1.0, 350.0))
    net.add_node(ThermalNode("cold", 1.0, 290.0))
    net.couple("hot", "cold", 1.0)
    net.couple_ambient("cold", "amb", 0.1)
    net.set_ambient("amb", 290.0)
    net.step(0.1)
    assert net.temperature("hot") < 350.0
    assert net.temperature("cold") > 290.0


def test_energy_conservation_isolated_pair():
    """With no ambient coupling, total energy is conserved by the solve."""
    net = ThermalNetwork()
    net.add_node(ThermalNode("a", 2.0, 350.0))
    net.add_node(ThermalNode("b", 3.0, 290.0))
    net.couple("a", "b", 0.7)
    e0 = net.total_energy_j()
    for _ in range(100):
        net.step(0.05)
    assert net.total_energy_j() == pytest.approx(e0, rel=1e-9)
    # And both approach the capacity-weighted mean.
    t_mean = (2.0 * 350.0 + 3.0 * 290.0) / 5.0
    for _ in range(10000):
        net.step(0.05)
    assert net.temperature("a") == pytest.approx(t_mean, abs=1e-6)


def test_steady_state_singular_without_ambient():
    net = ThermalNetwork()
    net.add_node(ThermalNode("a", 1.0))
    net.add_node(ThermalNode("b", 1.0))
    net.couple("a", "b", 1.0)
    with pytest.raises(ConfigurationError):
        net.steady_state(powers={"a": 1.0})


def test_stability_with_huge_dt():
    """Implicit Euler must not blow up at dt >> tau."""
    net = simple_net(c=1e-6, g=1.0, t_amb=300.0)  # tau = 1 us
    net.step(10.0, powers={"n": 0.5})
    assert net.temperature("n") == pytest.approx(300.5, abs=1e-3)


def test_invalid_dt():
    net = simple_net()
    with pytest.raises(ConfigurationError):
        net.step(0.0)


def test_negative_conductance_rejected():
    net = ThermalNetwork()
    net.add_node(ThermalNode("a", 1.0))
    with pytest.raises(ConfigurationError):
        net.couple_ambient("a", "amb", -1.0)


@settings(max_examples=25)
@given(st.floats(min_value=0.1, max_value=10.0),
       st.floats(min_value=0.01, max_value=5.0),
       st.floats(min_value=0.0, max_value=2.0))
def test_steady_state_formula_property(c, g, p):
    net = simple_net(c=c, g=g, t_amb=310.0)
    temps = net.steady_state(powers={"n": p})
    assert temps["n"] == pytest.approx(310.0 + p / g, rel=1e-9)
