"""Property-based invariants for the sharded-runtime building blocks.

Hypothesis is an optional dev dependency: the whole module skips when it
is absent, so the tier-1 suite never depends on it.  The properties are
the algebra the parity tests rely on:

- :func:`partition_monitors` is a contiguous balanced partition, a
  pure function of ``(n, k)``;
- :func:`spawn_monitor_seeds` is shard-count invariant (the seed list
  depends only on the session seed and fleet size, and any prefix is
  stable) with pairwise-distinct streams;
- ``RunResult.concat`` is the exact inverse of row-slicing, and
  ``from_records`` / ``trace`` round-trip losslessly.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.runtime import RunResult, partition_monitors, \
    spawn_monitor_seeds  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def _fleet_and_shards(draw):
    n = draw(st.integers(min_value=1, max_value=256))
    k = draw(st.integers(min_value=1, max_value=n))
    return n, k


@SETTINGS
@given(_fleet_and_shards())
def test_partition_covers_disjoint_contiguous_balanced(case):
    n, k = case
    bounds = partition_monitors(n, k)
    assert len(bounds) == k
    # Contiguous cover with no overlap: each slice starts where the
    # previous one stopped, from 0 to n.
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    for (_, stop), (start, _) in zip(bounds, bounds[1:]):
        assert start == stop
    sizes = [stop - start for start, stop in bounds]
    assert all(size >= 1 for size in sizes)
    assert max(sizes) - min(sizes) <= 1
    assert sorted(sizes, reverse=True) == sizes  # larger shards first
    # Pure function of (n, k).
    assert partition_monitors(n, k) == bounds


@SETTINGS
@given(st.integers(min_value=0, max_value=2**31 - 1),
       _fleet_and_shards())
def test_seed_spawning_is_shard_count_invariant(seed, case):
    n, m = case
    seeds = spawn_monitor_seeds(seed, n)
    assert len(seeds) == n
    assert len(set(seeds)) == n  # distinct per-monitor streams
    # Any prefix is stable: seeds depend on (seed, index) only, never
    # on the fleet size they were spawned for — a fleet of m shares its
    # leading monitors with a fleet of n.
    assert spawn_monitor_seeds(seed, m) == seeds[:m]
    assert spawn_monitor_seeds(seed, n) == seeds


def _random_result(rng, n, m):
    return RunResult(
        time_s=np.arange(m, dtype=float) * 0.02,
        **{name: rng.standard_normal((n, m))
           for name in RunResult.STACKED_FIELDS})


@SETTINGS
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=8))
def test_concat_inverts_row_slicing(seed, n, m):
    rng = np.random.default_rng(seed)
    whole = _random_result(rng, n, m)
    k = int(rng.integers(1, n + 1))
    parts = [RunResult(
        time_s=whole.time_s.copy(),
        **{name: np.asarray(getattr(whole, name))[start:stop].copy()
           for name in RunResult.STACKED_FIELDS})
        for start, stop in partition_monitors(n, k)]
    merged = RunResult.concat(parts)
    assert merged.n_monitors == n
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(merged, name)),
                              np.asarray(getattr(whole, name))), name


@SETTINGS
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=8))
def test_from_records_trace_roundtrip(seed, n, m):
    rng = np.random.default_rng(seed)
    whole = _random_result(rng, n, m)
    rebuilt = RunResult.from_records(whole.records())
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(rebuilt, name)),
                              np.asarray(getattr(whole, name))), name


def test_concat_refuses_mismatched_time_bases():
    from repro.errors import ConfigurationError
    rng = np.random.default_rng(0)
    a = _random_result(rng, 1, 4)
    b = _random_result(rng, 1, 4)
    b.time_s = b.time_s + 1.0
    with pytest.raises(ConfigurationError):
        RunResult.concat([a, b])
    with pytest.raises(ConfigurationError):
        RunResult.concat([])
