"""Unit tests for the DDS sine generator IP."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.sine_gen import SineGenerator


def test_validation():
    with pytest.raises(ConfigurationError):
        SineGenerator(-1.0)
    with pytest.raises(ConfigurationError):
        SineGenerator(1000.0, phase_bits=40)
    with pytest.raises(ConfigurationError):
        SineGenerator(1000.0, lut_bits=30)


def test_frequency_programming():
    gen = SineGenerator(1000.0, phase_bits=24)
    realised = gen.set_frequency(50.0)
    assert realised == pytest.approx(50.0, abs=gen.frequency_resolution_hz)
    with pytest.raises(ConfigurationError):
        gen.set_frequency(600.0)


def test_amplitude_full_scale():
    gen = SineGenerator(1000.0, amplitude_bits=12)
    gen.set_frequency(10.0)
    samples = gen.generate(2000)
    amp = (1 << 11) - 1
    assert samples.max() <= amp
    assert samples.min() >= -amp
    assert samples.max() > 0.98 * amp  # reaches near full scale


def test_output_is_a_clean_tone():
    fs = 1000.0
    gen = SineGenerator(fs)
    f0 = gen.set_frequency(125.0)
    n = 4096
    x = gen.generate(n).astype(float)
    spectrum = np.abs(np.fft.rfft(x * np.hanning(n)))
    peak_bin = np.argmax(spectrum)
    assert peak_bin == pytest.approx(f0 / fs * n, abs=2)
    # Spurs at least 40 dB below the carrier (10-bit quarter LUT).
    spurs = spectrum.copy()
    lo, hi = max(0, peak_bin - 4), peak_bin + 5
    spurs[lo:hi] = 0.0
    assert np.max(spurs) < 0.01 * spectrum[peak_bin]


def test_mean_is_zero():
    gen = SineGenerator(1000.0)
    gen.set_frequency(100.0)
    x = gen.generate(10000).astype(float)
    assert abs(np.mean(x)) < 5.0


def test_quadrant_symmetry():
    """One full period of an exactly divisible frequency is antisymmetric."""
    gen = SineGenerator(1024.0, phase_bits=12)
    gen.set_frequency(32.0)  # period = 32 samples exactly
    x = gen.generate(32).astype(int)
    assert np.array_equal(x[:16], -x[16:])


def test_generate_validation():
    gen = SineGenerator(1000.0)
    with pytest.raises(ConfigurationError):
        gen.generate(-1)
