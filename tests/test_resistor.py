"""Unit tests for the sensing resistors and materials."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sensor.materials import TI_TIN, ResistorMaterial
from repro.sensor.resistor import SensingResistor


def test_material_validation():
    with pytest.raises(ConfigurationError):
        ResistorMaterial(name="bad", tcr_per_k=-1e-3)
    with pytest.raises(ConfigurationError):
        ResistorMaterial(name="bad", tcr_per_k=1e-3, drift_per_kh=-1.0)


def test_resistor_validation():
    with pytest.raises(ConfigurationError):
        SensingResistor(-50.0)
    with pytest.raises(ConfigurationError):
        SensingResistor(50.0, tolerance_ohm=-1.0)
    with pytest.raises(ConfigurationError):
        SensingResistor(50.0, tolerance_ohm=60.0)


def test_eq1_of_paper():
    """R = R0 (1 + alpha (T - Tref)) exactly."""
    r = SensingResistor(50.0)
    t_ref = r.reference_temperature_k
    assert float(r.resistance(t_ref)) == pytest.approx(50.0)
    assert float(r.resistance(t_ref + 10.0)) == pytest.approx(
        50.0 * (1.0 + TI_TIN.tcr_per_k * 10.0))


def test_temperature_inversion_roundtrip():
    r = SensingResistor(2000.0)
    for t in [280.0, 293.15, 330.0]:
        res = float(r.resistance(t))
        assert float(r.temperature_from_resistance(res)) == pytest.approx(t)


def test_inversion_rejects_nonpositive():
    r = SensingResistor(50.0)
    with pytest.raises(ConfigurationError):
        r.temperature_from_resistance(0.0)


def test_tolerance_draw_within_bounds():
    for seed in range(20):
        r = SensingResistor(50.0, tolerance_ohm=0.5,
                            rng=np.random.default_rng(seed))
        assert 49.5 <= r.r0_ohm <= 50.5


def test_tolerance_deterministic_per_seed():
    a = SensingResistor(50.0, 0.5, rng=np.random.default_rng(7))
    b = SensingResistor(50.0, 0.5, rng=np.random.default_rng(7))
    assert a.r0_ohm == b.r0_ohm


def test_target_resistance():
    r = SensingResistor(50.0)
    target = r.target_resistance(5.0)
    assert target == pytest.approx(50.0 * (1.0 + TI_TIN.tcr_per_k * 5.0))
    with pytest.raises(ConfigurationError):
        r.target_resistance(-1.0)


def test_johnson_noise_magnitude():
    """50 Ohm at 293 K over 500 Hz: ~0.64 nV rms."""
    r = SensingResistor(50.0)
    vn = r.johnson_noise_vrms(293.15, 500.0)
    assert vn == pytest.approx(np.sqrt(4 * 1.380649e-23 * 293.15 * 50.0 * 500.0), rel=1e-2)
    with pytest.raises(ConfigurationError):
        r.johnson_noise_vrms(293.15, -1.0)


def test_ti_tin_does_not_age():
    """The paper: Ti/TiN shows no drift under electrical/thermal stress."""
    r = SensingResistor(50.0)
    r0 = r.r0_ohm
    r.age(5000.0)
    assert r.r0_ohm == r0


def test_inferior_material_ages():
    lossy = ResistorMaterial(name="poly", tcr_per_k=1e-3, drift_per_kh=0.01)
    r = SensingResistor(50.0, material=lossy)
    r.age(1000.0)
    assert r.r0_ohm == pytest.approx(50.5)


def test_age_rejects_negative():
    with pytest.raises(ConfigurationError):
        SensingResistor(50.0).age(-1.0)


@settings(max_examples=30)
@given(st.floats(min_value=273.15, max_value=373.15))
def test_resistance_positive_and_monotone(t):
    r = SensingResistor(50.0)
    assert float(r.resistance(t)) > 0.0
    assert float(r.resistance(t + 1.0)) > float(r.resistance(t))
