"""Unit tests for the EEPROM model and the calibration image layout."""

import pytest

from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.eeprom_image import (
    CALIBRATION_ADDRESS,
    RECORD_SIZE,
    load_calibration,
    store_calibration,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.isif.eeprom import Eeprom, crc16_ccitt
from repro.physics.kings_law import KingsLaw


def sample_calibration():
    return FlowCalibration(
        law=KingsLaw(1.2e-3, 4.4e-3, 0.52),
        overtemperature_k=5.0,
        direction_offset=0.0123,
        fluid_temperature_k=288.9,
        reference_resistance_ohm=2012.5,
    )


def test_crc16_known_vector():
    # CRC-16/CCITT-FALSE("123456789") = 0x29B1 — standard check value.
    assert crc16_ccitt(b"123456789") == 0x29B1
    assert crc16_ccitt(b"") == 0xFFFF


def test_eeprom_validation():
    with pytest.raises(ConfigurationError):
        Eeprom(size_bytes=100, page_size=32)  # not a multiple
    with pytest.raises(ConfigurationError):
        Eeprom(endurance_cycles=0)


def test_eeprom_erased_state_and_roundtrip():
    e = Eeprom()
    assert e.read(0, 4) == b"\xff\xff\xff\xff"
    e.write(10, b"hello")
    assert e.read(10, 5) == b"hello"


def test_eeprom_bounds():
    e = Eeprom(size_bytes=64, page_size=32)
    with pytest.raises(ConfigurationError):
        e.read(60, 8)
    with pytest.raises(ConfigurationError):
        e.write(-1, b"x")


def test_eeprom_wear_accounting():
    e = Eeprom(size_bytes=64, page_size=32)
    e.write(0, b"a")          # page 0
    e.write(30, b"abcd")      # spans pages 0 and 1
    assert e.page_cycles(0) == 2
    assert e.page_cycles(1) == 1


def test_eeprom_worn_page_corrupts():
    e = Eeprom(size_bytes=64, page_size=32, seed=1)
    e.wear_out_page(0)
    payload = bytes(range(16))
    e.write(0, payload)
    assert e.read(0, 16) != payload  # exactly the failure CRC catches


def test_calibration_image_roundtrip():
    e = Eeprom()
    cal = sample_calibration()
    store_calibration(e, cal)
    restored = load_calibration(e)
    assert restored.law.coeff_a == pytest.approx(cal.law.coeff_a)
    assert restored.law.coeff_b == pytest.approx(cal.law.coeff_b)
    assert restored.law.exponent == pytest.approx(cal.law.exponent)
    assert restored.direction_offset == pytest.approx(cal.direction_offset)
    assert restored.reference_resistance_ohm == pytest.approx(2012.5)


def test_blank_eeprom_rejected():
    with pytest.raises(CalibrationError):
        load_calibration(Eeprom())


def test_corrupt_image_rejected():
    e = Eeprom()
    store_calibration(e, sample_calibration())
    # Flip one bit in the stored payload.
    raw = bytearray(e.read(CALIBRATION_ADDRESS, RECORD_SIZE))
    raw[8] ^= 0x10
    e.write(CALIBRATION_ADDRESS, bytes(raw))
    with pytest.raises(CalibrationError):
        load_calibration(e)


def test_worn_eeprom_write_is_caught_by_crc():
    e = Eeprom(seed=3)
    for page in range(RECORD_SIZE // e.page_size + 1):
        e.wear_out_page(page)
    store_calibration(e, sample_calibration())
    with pytest.raises(CalibrationError):
        load_calibration(e)
