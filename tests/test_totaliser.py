"""Tests for the volume totaliser."""

import numpy as np
import pytest

from repro.conditioning.totaliser import VolumeTotaliser
from repro.errors import ConfigurationError
from repro.isif.clock import ClockGenerator

DN50_AREA = np.pi * 0.025**2


def test_validation():
    with pytest.raises(ConfigurationError):
        VolumeTotaliser(pipe_diameter_m=0.0)
    with pytest.raises(ConfigurationError):
        VolumeTotaliser().accumulate(1.0, 0.0)


def test_steady_flow_volume():
    t = VolumeTotaliser()
    for _ in range(3600):
        t.accumulate(1.0, 1.0)  # one hour at 1 m/s
    expected = 1.0 * DN50_AREA * 3600.0
    assert t.forward_m3 == pytest.approx(expected)
    assert t.reverse_m3 == 0.0
    assert t.net_m3 == pytest.approx(expected)


def test_reverse_flow_separated():
    """Backflow goes to its own register — it must never reduce the
    billed forward volume."""
    t = VolumeTotaliser()
    t.accumulate(1.0, 100.0)
    forward_before = t.forward_m3
    t.accumulate(-0.5, 100.0)
    assert t.forward_m3 == forward_before  # untouched
    assert t.reverse_m3 == pytest.approx(0.5 * DN50_AREA * 100.0)
    assert t.net_m3 < forward_before


def test_clock_systematic_propagates():
    """A 500 ppm fast clock over-bills by exactly 500 ppm."""
    fast = ClockGenerator(tolerance_ppm=500.0, seed=7)
    fast._trim_error_ppm = 500.0
    ideal = VolumeTotaliser()
    skewed = VolumeTotaliser(clock=fast)
    for _ in range(1000):
        ideal.accumulate(1.0, 1.0)
        skewed.accumulate(1.0, 1.0)
    ratio = skewed.forward_m3 / ideal.forward_m3
    assert ratio == pytest.approx(1.0 + 500e-6, abs=1e-8)


def test_reset():
    t = VolumeTotaliser()
    t.accumulate(1.0, 10.0)
    t.reset()
    assert t.forward_m3 == 0.0
    assert t.reverse_m3 == 0.0


def test_integrates_monitor_output(shared_setup):
    """End to end: totalise the calibrated monitor's readings and land
    within the calibration accuracy of the true volume."""
    from repro.sensor.maf import FlowConditions
    monitor = shared_setup.monitor
    t = VolumeTotaliser()
    cond = FlowConditions(speed_mps=1.0)
    monitor.measure(cond, 8.0)  # settle the output filter
    dt = monitor.platform.dt_s
    seconds = 5.0
    for _ in range(int(seconds / dt)):
        m = monitor.step(cond)
        t.accumulate(m.speed_mps, dt)
    true_volume = 1.0 * DN50_AREA * seconds
    assert t.net_m3 == pytest.approx(true_volume, rel=0.1)
