"""Unit tests for the water property correlations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.physics import water

# Reference values (IAPWS / CRC tables) at 20 °C and 80 °C.
REFERENCE = {
    293.15: dict(rho=998.2, cp=4182.0, k=0.598, mu=1.002e-3, pr=7.0),
    353.15: dict(rho=971.8, cp=4197.0, k=0.670, mu=0.355e-3, pr=2.2),
}


@pytest.mark.parametrize("t_k, expected", REFERENCE.items())
def test_reference_values(t_k, expected):
    assert water.density(t_k) == pytest.approx(expected["rho"], rel=5e-3)
    assert water.specific_heat(t_k) == pytest.approx(expected["cp"], rel=5e-3)
    assert water.thermal_conductivity(t_k) == pytest.approx(expected["k"], rel=2e-2)
    assert water.dynamic_viscosity(t_k) == pytest.approx(expected["mu"], rel=3e-2)
    assert water.prandtl_number(t_k) == pytest.approx(expected["pr"], rel=5e-2)


def test_density_peaks_near_4c():
    t = np.linspace(273.15, 283.15, 101)
    rho = water.density(t)
    t_peak = t[np.argmax(rho)]
    assert 276.0 < t_peak < 278.5  # max density at ~3.98 C


def test_viscosity_monotone_decreasing():
    t = np.linspace(275.0, 370.0, 50)
    mu = water.dynamic_viscosity(t)
    assert np.all(np.diff(mu) < 0.0)


def test_conductivity_increases_over_potable_range():
    assert water.thermal_conductivity(350.0) > water.thermal_conductivity(280.0)


def test_saturation_pressure_at_100c_is_one_atm():
    assert water.saturation_pressure(373.15) == pytest.approx(101_325.0, rel=5e-3)


def test_boiling_temperature_roundtrip():
    for t in [300.0, 330.0, 370.0]:
        p = float(water.saturation_pressure(t))
        assert float(water.boiling_temperature(p)) == pytest.approx(t, abs=0.1)


def test_boiling_temperature_rises_with_pressure():
    assert water.boiling_temperature(3e5) > water.boiling_temperature(1e5)


def test_celsius_passed_as_kelvin_rejected():
    with pytest.raises(ConfigurationError):
        water.density(20.0)  # 20 K is not liquid water


def test_negative_pressure_rejected():
    with pytest.raises(ConfigurationError):
        water.boiling_temperature(-1.0)


def test_water_properties_bundle_consistent():
    props = water.water_properties(293.15)
    assert props.nu == pytest.approx(props.mu / props.rho)
    assert props.pr == pytest.approx(props.cp * props.mu / props.k)


def test_vectorised_matches_scalar():
    t = np.array([280.0, 300.0, 340.0])
    rho_vec = water.density(t)
    for i, ti in enumerate(t):
        assert rho_vec[i] == pytest.approx(float(water.density(float(ti))))


@given(st.floats(min_value=274.0, max_value=372.0))
def test_film_properties_scalar_matches_vectorised(t_k):
    k, nu, pr = water.film_properties_scalar(t_k)
    assert k == pytest.approx(float(water.thermal_conductivity(t_k)), rel=1e-9)
    assert nu == pytest.approx(float(water.kinematic_viscosity(t_k)), rel=1e-9)
    assert pr == pytest.approx(float(water.prandtl_number(t_k)), rel=1e-9)


@given(st.floats(min_value=274.0, max_value=372.0))
def test_properties_positive_everywhere(t_k):
    assert water.density(t_k) > 0
    assert water.specific_heat(t_k) > 0
    assert water.thermal_conductivity(t_k) > 0
    assert water.dynamic_viscosity(t_k) > 0
