"""Shared fixtures.

The calibrated end-to-end setup is expensive (a full §4 calibration
campaign), so integration tests share one session-scoped instance built
in fast mode.  Tests that mutate sensor state build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.station.scenarios import CalibratedSetup, build_calibrated_monitor


@pytest.fixture(scope="session")
def shared_setup() -> CalibratedSetup:
    """One calibrated monitor shared by read-mostly integration tests."""
    return build_calibrated_monitor(seed=42, fast=True, use_pulsed_drive=False)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for unit tests."""
    return np.random.default_rng(123)
