"""Tests for the clock generator / divider."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isif.clock import ClockDivider, ClockGenerator


def test_validation():
    with pytest.raises(ConfigurationError):
        ClockGenerator(nominal_hz=0.0)
    with pytest.raises(ConfigurationError):
        ClockGenerator(tolerance_ppm=-1.0)
    with pytest.raises(ConfigurationError):
        ClockDivider(ClockGenerator(), 0)


def test_trim_error_within_tolerance():
    for seed in range(20):
        clk = ClockGenerator(tolerance_ppm=500.0, seed=seed)
        err = clk.time_base_error_fraction()
        assert abs(err) <= 500e-6 + 1e-12


def test_temperature_drift():
    clk = ClockGenerator(tempco_ppm_per_k=30.0, seed=1)
    f_cold = clk.frequency_hz()
    clk.die_temperature_k = 298.15 + 40.0  # hot enclosure in summer
    f_hot = clk.frequency_hz()
    # Relative drift, slightly skewed by the instance's trim error.
    assert (f_hot - f_cold) / f_cold == pytest.approx(40 * 30e-6, rel=1e-3)


def test_jitter_statistics():
    clk = ClockGenerator(jitter_ppm_rms=100.0, seed=2)
    base = clk.period_s()
    periods = np.array([clk.period_s(jittered=True) for _ in range(20000)])
    assert np.std(periods) / base == pytest.approx(100e-6, rel=0.05)
    assert np.mean(periods) == pytest.approx(base, rel=1e-5)


def test_divider_frequency_and_ticks():
    clk = ClockGenerator(nominal_hz=40e6, tolerance_ppm=0.0, seed=3)
    div = ClockDivider(clk, 40_000)  # 1 kHz loop tick
    assert div.frequency_hz() == pytest.approx(1000.0)
    assert div.ticks_for(10.0) == 10_000


def test_totaliser_systematic():
    """A clock 500 ppm fast accumulates 500 ppm extra ticks — a direct
    volume-totalising error no flow calibration can see."""
    fast = ClockGenerator(tolerance_ppm=500.0, seed=7)
    fast._trim_error_ppm = 500.0  # pin the worst case
    div = ClockDivider(fast, 40_000)
    ticks = div.ticks_for(3600.0)  # one hour
    assert ticks == pytest.approx(3600 * 1000 * (1 + 500e-6), abs=2)
    with pytest.raises(ConfigurationError):
        div.ticks_for(-1.0)
