"""System behaviour at the edges of the potable-water envelope."""

import numpy as np
import pytest

from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor


def make_loop(seed=81):
    sensor = MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                 enable_fouling=False))
    return CTAController(sensor, ISIFPlatform.for_anemometer(seed=seed))


@pytest.mark.parametrize("t_water_c", [2.0, 15.0, 35.0])
def test_loop_regulates_across_water_temperatures(t_water_c):
    """Near-freezing mountain supply to warm rooftop tank: the CT loop
    must hold its overtemperature everywhere in the potable range."""
    loop = make_loop()
    cond = FlowConditions(speed_mps=1.0, temperature_k=273.15 + t_water_c)
    tel = loop.settle(cond, 1.5)
    d_t = tel.readout.heater_a_temperature_k - cond.temperature_k
    assert d_t == pytest.approx(5.0, abs=0.8)


def test_cold_water_needs_more_power():
    """Colder water is more viscous (lower Re) but conducts less; the
    net King coefficients shift — the loop absorbs it, the calibration
    would not (that is E9's subject)."""
    cold = make_loop(seed=82).settle(
        FlowConditions(speed_mps=1.0, temperature_k=275.15), 1.0)
    warm = make_loop(seed=82).settle(
        FlowConditions(speed_mps=1.0, temperature_k=303.15), 1.0)
    # Both regulate; supplies differ measurably (property drift).
    assert abs(cold.supply_a_v - warm.supply_a_v) > 0.02


def test_zero_flow_long_dwell_remains_stable():
    """Stagnant line overnight: the natural-convection floor keeps the
    loop out of the u-min corner and the reading pinned near zero."""
    loop = make_loop(seed=83)
    cond = FlowConditions(speed_mps=0.0)
    supplies = []
    for _ in range(8000):
        tel = loop.step(cond)
        supplies.append(tel.supply_a_v)
    tail = np.array(supplies[4000:])
    assert np.std(tail) < 0.02
    assert np.mean(tail) > loop.config.supply_min_v + 0.05


@pytest.mark.slow
def test_soak_regulation_over_a_minute():
    """Medium-length soak: no slow divergence, windup or limit cycling
    in the loop over 60 s of mixed conditions."""
    loop = make_loop(seed=84)
    rng = np.random.default_rng(0)
    d_ts = []
    for block in range(60):
        v = float(rng.uniform(0.1, 2.4))
        t = float(rng.uniform(283.15, 298.15))
        tel = loop.settle(FlowConditions(speed_mps=v, temperature_k=t), 1.0)
        d_ts.append(tel.readout.heater_a_temperature_k - t)
    d_ts = np.array(d_ts)
    assert np.all(np.abs(d_ts - 5.0) < 1.0)
    assert not loop.platform.scheduler.overrun
