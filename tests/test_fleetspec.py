"""FleetSpec/RigSpec: the one declarative fleet description.

Covers seed-derivation bit-compatibility with the classic Session
plumbing, dict round-trips (scenario tags included), the ``fleet=``
redesign of Session / run_batch / characterize_meter_pool, the
conflict and scenario refusals, and the warn-once deprecation shims.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import FleetSpec, RigSpec, RunResult, Session, run_batch
from repro.runtime import spec as spec_module
from repro.station.campaign import Event, ScenarioSpec
from repro.station.fleet import characterize_meter_pool
from repro.station.profiles import hold


@pytest.fixture(autouse=True)
def _fresh_warn_once():
    """Each test sees the warn-once shims in their pristine state."""
    spec_module._WARNED.clear()
    yield
    spec_module._WARNED.clear()


def _assert_bit_equal(a: RunResult, b: RunResult):
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.asarray(getattr(a, name)).tobytes() == \
            np.asarray(getattr(b, name)).tobytes(), name


def test_monitor_seeds_match_session_derivation():
    spec = FleetSpec.homogeneous(4, seed=99)
    children = np.random.SeedSequence(99).spawn(4)
    assert spec.monitor_seeds() == \
        [int(c.generate_state(1)[0]) for c in children]


def test_explicit_entry_seed_pins_its_slice():
    mixed = FleetSpec(rigs=(RigSpec(count=2),
                            RigSpec(count=2, seed=7)), seed=99)
    seeds = mixed.monitor_seeds()
    fleet = FleetSpec.homogeneous(4, seed=99).monitor_seeds()
    own = [int(c.generate_state(1)[0])
           for c in np.random.SeedSequence(7).spawn(2)]
    assert seeds[:2] == fleet[:2]
    assert seeds[2:] == own


def test_dict_round_trip_with_scenarios():
    spec = FleetSpec(
        rigs=(RigSpec(count=2, scenario="tank_leak", fast_calibration=True),
              RigSpec(count=1, seed=5, overtemperature_k=7.0,
                      scenario=ScenarioSpec(
                          name="custom",
                          events=(Event(kind="freeze", at_s=1.0,
                                        duration_s=0.5),)),
                      calibration_speeds_cmps=(0.0, 50.0, 120.0))),
        seed=13)
    clone = FleetSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.has_scenarios
    assert clone.without_scenarios() == \
        FleetSpec.from_dict(spec.without_scenarios().to_dict())


def test_fleet_introspection():
    spec = FleetSpec(rigs=(RigSpec(count=2), RigSpec(count=3)), seed=1)
    assert spec.n_monitors == 5
    assert len(spec.flat()) == 5
    assert not spec.has_scenarios
    assert spec.dt_s == 1.0 / spec.loop_rate_hz


def test_mixed_loop_rates_refused():
    spec = FleetSpec(rigs=(RigSpec(), RigSpec(loop_rate_hz=500.0)))
    with pytest.raises(ConfigurationError) as err:
        spec.loop_rate_hz
    assert err.value.reason == "heterogeneous"


def test_empty_and_invalid_specs_refused():
    with pytest.raises(ConfigurationError):
        FleetSpec(rigs=())
    with pytest.raises(ConfigurationError):
        FleetSpec(rigs=(object(),))
    with pytest.raises(ConfigurationError):
        RigSpec(count=0)
    with pytest.raises(ConfigurationError):
        FleetSpec.homogeneous(0)


def test_session_fleet_matches_legacy_session():
    profile = hold(70.0, 1.0)
    spec = FleetSpec.homogeneous(2, seed=31, fast_calibration=True)
    with Session(fleet=spec) as session:
        session.calibrate()
        from_spec = session.run(profile)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FutureWarning)
        with Session(n_monitors=2, seed=31,
                     fast_calibration=True) as session:
            session.calibrate()
            legacy = session.run(profile)
    _assert_bit_equal(from_spec, legacy)


def test_session_fleet_conflicts_refused():
    spec = FleetSpec.homogeneous(2, seed=1)
    with pytest.raises(ConfigurationError):
        Session(n_monitors=2, fleet=spec)
    with pytest.raises(ConfigurationError):
        Session(seed=7, fleet=spec)
    with pytest.raises(ConfigurationError):
        Session(fleet=spec, fast_calibration=True)


def test_scenario_specs_refused_outside_campaign():
    tagged = FleetSpec(rigs=(RigSpec(scenario="tank_leak",
                                     fast_calibration=True),))
    with pytest.raises(ConfigurationError):
        Session(fleet=tagged)
    with pytest.raises(ConfigurationError):
        run_batch(tagged, hold(50.0, 1.0))


def test_run_batch_accepts_fleet_spec():
    profile = hold(60.0, 1.0)
    spec = FleetSpec(
        rigs=(RigSpec(fast_calibration=True),
              RigSpec(overtemperature_k=7.0, fast_calibration=True)),
        seed=5)
    batched = run_batch(spec, profile)
    with Session(fleet=spec) as session:
        session.calibrate()
        from_session = session.run(profile)
    assert batched.n_monitors == 2
    _assert_bit_equal(batched, from_session)


def test_session_build_kwargs_warn_exactly_once():
    with pytest.warns(FutureWarning, match="FleetSpec") as record:
        Session(n_monitors=1, seed=1, fast_calibration=True)
        Session(n_monitors=1, seed=2, use_pulsed_drive=False)
    assert len(record) == 1


def test_characterize_meter_pool_n_meters_warns_once():
    with pytest.warns(FutureWarning, match="FleetSpec") as record:
        pool_a = characterize_meter_pool(2, seed=3, duration_s=4.0,
                                         settle_s=2.0)
        pool_b = characterize_meter_pool(2, seed=3, duration_s=4.0,
                                         settle_s=2.0)
    assert len(record) == 1
    assert [(m.bias_fraction, m.noise_mps) for m in pool_a] == \
        [(m.bias_fraction, m.noise_mps) for m in pool_b]


def test_characterize_meter_pool_accepts_fleet_spec():
    spec = FleetSpec.homogeneous(2, seed=3, use_pulsed_drive=False,
                                 fast_calibration=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error", FutureWarning)
        from_spec = characterize_meter_pool(spec, duration_s=4.0,
                                            settle_s=2.0)
    with pytest.warns(FutureWarning):
        legacy = characterize_meter_pool(2, seed=3, duration_s=4.0,
                                         settle_s=2.0)
    assert [(m.bias_fraction, m.noise_mps) for m in from_spec] == \
        [(m.bias_fraction, m.noise_mps) for m in legacy]
    with pytest.raises(ConfigurationError):
        characterize_meter_pool(spec, seed=9)
