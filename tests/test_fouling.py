"""Unit tests for the CaCO3 fouling model (fig. 8 mechanism)."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.carbonate import TUSCAN_TAP_WATER, WaterChemistry
from repro.sensor.fouling import FoulingConfig, FoulingModel

BULK = 288.15
DAY = 86_400.0


def grow(model, days, wall_excess_k=30.0, v=0.5, chem=TUSCAN_TAP_WATER):
    for _ in range(int(days)):
        model.step(DAY, chem, BULK + wall_excess_k, BULK, v)
    return model.thickness_m


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FoulingConfig(rate_constant_m_per_s=-1.0)
    with pytest.raises(ConfigurationError):
        FoulingConfig(adhesion_factor=1.5)


def test_scale_grows_on_hot_wall_in_hard_water():
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    thickness = grow(m, 30)
    assert thickness > 100e-9  # visible deposit in a month, bare surface


def test_passivation_slows_growth():
    """'the right choice of a passivation layer results in a better
    protection against deposits'."""
    bare = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    passivated = FoulingModel(FoulingConfig(adhesion_factor=0.1))
    t_bare = grow(bare, 60)
    t_pass = grow(passivated, 60)
    assert t_pass < 0.3 * t_bare


def test_cool_wall_does_not_scale():
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    thickness = grow(m, 90, wall_excess_k=0.5)
    assert thickness < 10e-9


def test_soft_water_does_not_scale():
    soft = WaterChemistry(calcium_mg_per_l=25.0, alkalinity_mg_per_l=30.0,
                          ph=6.8, tds_mg_per_l=120.0)
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    thickness = grow(m, 90, chem=soft)
    assert thickness < 5e-9


def test_erosion_limits_thickness_at_high_flow():
    slow = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    fast = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    grow(slow, 120, v=0.05)
    grow(fast, 120, v=2.5)
    assert fast.thickness_m < slow.thickness_m


def test_thermal_resistance_scales_with_thickness():
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    area = 2e-8
    assert m.thermal_resistance_k_per_w(area) == 0.0
    grow(m, 60)
    r1 = m.thermal_resistance_k_per_w(area)
    grow(m, 60)
    assert m.thermal_resistance_k_per_w(area) > r1
    with pytest.raises(ConfigurationError):
        m.thermal_resistance_k_per_w(0.0)


def test_degrade_conductance_series_model():
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    grow(m, 120)
    g_clean = 5e-3
    area = 2e-8
    g_fouled = m.degrade_conductance(g_clean, area)
    expected = 1.0 / (1.0 / g_clean + m.thermal_resistance_k_per_w(area))
    assert g_fouled == pytest.approx(expected)
    assert g_fouled < g_clean


def test_reset():
    m = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    grow(m, 30)
    m.reset()
    assert m.thickness_m == 0.0


def test_invalid_dt():
    with pytest.raises(ConfigurationError):
        FoulingModel().step(0.0, TUSCAN_TAP_WATER, 300.0, 290.0, 0.5)
