"""Cross-module property-based invariants (hypothesis).

These are the contracts the system design silently leans on; each is a
hypothesis sweep over the relevant input space rather than a point
check.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conditioning.direction import DirectionDetector
from repro.conditioning.telemetry import decode_frame, encode_frame
from repro.conditioning.monitor import FlowMeasurement
from repro.isif.dac import ThermometerDAC
from repro.isif.decimator import CICDecimator
from repro.isif.eeprom import crc16_ccitt
from repro.isif.fixed_point import QFormat
from repro.physics.convection import WireGeometry, film_conductance
from repro.physics.kings_law import KingsLaw
from repro.sensor.bridge import WheatstoneBridge
from repro.sensor.resistor import SensingResistor


@settings(max_examples=50)
@given(st.floats(min_value=0.0, max_value=2.5),
       st.floats(min_value=0.5, max_value=30.0),
       st.floats(min_value=278.15, max_value=308.15))
def test_cta_equilibrium_supply_unique(v, overtemp, t_fluid):
    """For any operating point, the required bridge supply is a single
    positive finite value — no ambiguity the PI could hunt between."""
    geometry = WireGeometry()
    g = float(film_conductance(v, geometry, t_fluid + overtemp, t_fluid))
    p = g * overtemp
    rh = 50.0 * (1.0 + 3.5e-3 * (t_fluid + overtemp - 293.15))
    u = np.sqrt(p * (50.0 + rh) ** 2 / rh)
    assert np.isfinite(u) and 0.0 < u < 20.0


@settings(max_examples=50)
@given(st.floats(min_value=1e-4, max_value=1e-2),
       st.floats(min_value=1e-3, max_value=1e-2),
       st.floats(min_value=0.35, max_value=0.65),
       st.floats(min_value=0.0, max_value=2.5),
       st.floats(min_value=1.0, max_value=20.0))
def test_kings_law_power_inversion_consistent(a, b, n, v, dt):
    law = KingsLaw(a, b, n)
    p = float(law.power(v, dt))
    assert float(law.invert_power(p, dt)) == pytest.approx(v, abs=1e-9)


@settings(max_examples=30)
@given(st.floats(min_value=0.1, max_value=5.0),
       st.floats(min_value=1800.0, max_value=2200.0))
def test_bridge_null_exactly_at_balance(supply, rt):
    """differential(U, Rh_balance(Rt), Rt) == 0 for any supply and Rt."""
    bridge = WheatstoneBridge(SensingResistor(50.0), SensingResistor(2000.0))
    rh_bal = bridge.balance_resistance(rt)
    assert bridge.differential_v(supply, rh_bal, rt) == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=4094))
def test_thermometer_dac_monotone_everywhere(code):
    dac = ThermometerDAC(bits=12, mismatch_sigma=5e-3, seed=13)
    assert dac.ideal_output(code + 1) > dac.ideal_output(code)


@settings(max_examples=20)
@given(st.lists(st.sampled_from([-1, 1]), min_size=64, max_size=256))
def test_cic_streaming_equals_block(bits):
    """Phase persistence: arbitrary chunking never changes the output."""
    arr = np.array(bits, dtype=np.int64)
    block = CICDecimator(order=3, rate=16).decimate(arr)
    stream = CICDecimator(order=3, rate=16)
    collected = []
    i = 0
    rng = np.random.default_rng(len(bits))
    while i < len(arr):
        step = int(rng.integers(1, 12))
        collected.extend(stream.decimate(arr[i:i + step]))
        i += step
    assert np.array_equal(block, np.array(collected, dtype=np.int64))


@settings(max_examples=40)
@given(st.floats(min_value=-30.0, max_value=30.0),
       st.floats(min_value=0.0, max_value=0.999),
       st.booleans(),
       st.floats(min_value=0.0, max_value=650.0))
def test_telemetry_roundtrip_any_measurement(speed, coverage, valid, t):
    m = FlowMeasurement(time_s=t, speed_mps=speed,
                        direction=int(np.sign(speed)),
                        bubble_coverage=coverage, valid=valid)
    frame = decode_frame(encode_frame(m, sequence=5))
    assert frame.flow_mps == pytest.approx(speed, abs=6e-4)
    assert frame.valid == valid
    assert frame.bubble_coverage == pytest.approx(coverage, abs=3e-3)


@settings(max_examples=40)
@given(st.binary(min_size=0, max_size=64))
def test_crc_detects_any_single_bit_flip(data):
    if not data:
        return
    crc = crc16_ccitt(data)
    corrupted = bytearray(data)
    corrupted[len(data) // 2] ^= 0x08
    assert crc16_ccitt(bytes(corrupted)) != crc


@settings(max_examples=40)
@given(st.floats(min_value=0.0, max_value=5.0),
       st.floats(min_value=0.0, max_value=5.0))
def test_direction_asymmetry_bounded_and_antisymmetric(u_a, u_b):
    d = DirectionDetector.asymmetry(u_a, u_b)
    assert -1.0 <= d <= 1.0
    assert DirectionDetector.asymmetry(u_b, u_a) == pytest.approx(-d)


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=6),
       st.integers(min_value=1, max_value=24),
       st.floats(min_value=-100.0, max_value=100.0))
def test_qformat_quantize_idempotent(int_bits, frac_bits, value):
    q = QFormat(int_bits, frac_bits)
    once = q.quantize(value)
    assert q.quantize(once) == once  # fixed point of the quantiser
