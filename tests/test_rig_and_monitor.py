"""Integration tests: rig, calibration campaign, monitor (shared setup)."""

import numpy as np
import pytest

from repro.conditioning.monitor import MonitorConfig
from repro.errors import CalibrationError, ConfigurationError
from repro.sensor.maf import FlowConditions
from repro.station.profiles import hold, staircase
from repro.station.rig import run_calibration


def test_calibration_object_sane(shared_setup):
    cal = shared_setup.calibration
    assert cal.law.coeff_a > 0.0
    assert cal.law.coeff_b > 0.0
    assert 0.3 <= cal.law.exponent <= 0.7
    assert cal.rms_residual_mps < 0.15  # fast-mode campaign, still decent


def test_calibration_inverts_over_full_range(shared_setup):
    cal = shared_setup.calibration
    for v in [0.1, 0.5, 1.0, 2.0, 2.5]:
        g = cal.conductance_from_speed(v)
        assert cal.speed_from_conductance(g) == pytest.approx(v, rel=1e-9)


def test_monitor_steady_reading(shared_setup):
    monitor = shared_setup.monitor
    cond = FlowConditions(speed_mps=1.2)
    m = monitor.measure(cond, 12.0)
    assert m.speed_mps == pytest.approx(1.2, rel=0.15)
    assert m.direction in (0, 1)
    assert m.bubble_coverage == pytest.approx(0.0, abs=0.01)
    assert m.speed_cmps == pytest.approx(m.speed_mps * 100.0)


def test_monitor_record_decimation(shared_setup):
    monitor = shared_setup.monitor
    records = monitor.record(FlowConditions(speed_mps=0.5), 0.1, every_n=10)
    assert len(records) == 10
    with pytest.raises(ConfigurationError):
        monitor.record(FlowConditions(speed_mps=0.5), 0.1, every_n=0)
    with pytest.raises(ConfigurationError):
        monitor.measure(FlowConditions(speed_mps=0.5), 0.0)


def test_rig_run_produces_aligned_traces(shared_setup):
    rig = shared_setup.rig
    record = rig.run(hold(speed_cmps=80.0, duration_s=3.0), record_every_n=50)
    n = len(record)
    assert n == 60
    for name in ("true_speed_mps", "reference_mps", "measured_mps",
                 "direction", "pressure_pa", "temperature_k"):
        assert len(getattr(record, name)) == n
    # Reference meter tracks the line closely by the end.
    assert record.reference_mps[-1] == pytest.approx(record.true_speed_mps[-1],
                                                     rel=0.02)


def test_rig_steady_window_slicing(shared_setup):
    rig = shared_setup.rig
    record = rig.run(staircase([40.0, 120.0], dwell_s=2.0), record_every_n=50)
    # Line time is cumulative across runs: slice relative to this record.
    t0 = record.time_s[0]
    window = record.steady_window(t0 + 2.5, t0 + 4.0)
    assert len(window) > 0
    assert np.all(window.time_s >= t0 + 2.5)
    assert np.all(window.time_s < t0 + 4.0)


def test_rig_validation(shared_setup):
    with pytest.raises(ConfigurationError):
        shared_setup.rig.run(hold(50.0, 1.0), record_every_n=0)


def test_run_calibration_requires_enough_speeds(shared_setup):
    with pytest.raises(CalibrationError):
        run_calibration(shared_setup.monitor.controller, [0.0, 50.0])
