"""Unit tests for the LEON real-time scheduler model."""

import pytest

from repro.errors import ConfigurationError
from repro.isif.scheduler import DEFAULT_CYCLE_COSTS, CpuModel, IPTask, RealTimeScheduler


def test_validation():
    with pytest.raises(ConfigurationError):
        RealTimeScheduler(0.0)
    with pytest.raises(ConfigurationError):
        CpuModel(clock_hz=-1.0)
    with pytest.raises(ConfigurationError):
        IPTask("t", lambda: None, cycles=-1)
    with pytest.raises(ConfigurationError):
        IPTask("t", lambda: None, cycles=1, divider=0)


def test_tasks_execute_in_order():
    sched = RealTimeScheduler(1000.0)
    trace = []
    sched.register(IPTask("a", lambda: trace.append("a"), cycles=10))
    sched.register(IPTask("b", lambda: trace.append("b"), cycles=10))
    sched.tick()
    assert trace == ["a", "b"]
    assert sched.task_names() == ("a", "b")


def test_duplicate_names_rejected():
    sched = RealTimeScheduler(1000.0)
    sched.register(IPTask("a", lambda: None, cycles=1))
    with pytest.raises(ConfigurationError):
        sched.register(IPTask("a", lambda: None, cycles=1))


def test_divider_decimates_execution():
    sched = RealTimeScheduler(1000.0)
    count = []
    sched.register(IPTask("slow", lambda: count.append(1), cycles=1, divider=10))
    for _ in range(100):
        sched.tick()
    assert len(count) == 10


def test_utilization_accounting():
    cpu = CpuModel(clock_hz=1e6, interrupt_overhead_cycles=0)
    sched = RealTimeScheduler(1000.0, cpu)  # budget: 1000 cycles/tick
    sched.register(IPTask("work", lambda: None, cycles=500))
    for _ in range(10):
        sched.tick()
    assert sched.utilization() == pytest.approx(0.5)
    assert not sched.overrun


def test_overrun_flag():
    cpu = CpuModel(clock_hz=1e6, interrupt_overhead_cycles=0)
    sched = RealTimeScheduler(1000.0, cpu)
    sched.register(IPTask("heavy", lambda: None, cycles=1500))
    sched.tick()
    assert sched.overrun
    assert sched.worst_case_utilization() > 1.0


def test_interrupt_overhead_counted():
    cpu = CpuModel(clock_hz=1e6, interrupt_overhead_cycles=100)
    sched = RealTimeScheduler(1000.0, cpu)
    sched.tick()  # no tasks: still pays overhead
    assert sched.utilization() == pytest.approx(0.1)


def test_anemometer_partition_fits_the_leon():
    """The paper's software partition (2x ref-subtract + 2x PI at 1 kHz)
    must be tiny on a 40 MHz LEON — otherwise the platform story breaks."""
    sched = RealTimeScheduler(1000.0)
    for name in ("reference_subtract", "pi_controller"):
        for suffix in ("_a", "_b"):
            sched.register(IPTask(name + suffix, lambda: None,
                                  cycles=DEFAULT_CYCLE_COSTS[name]))
    for _ in range(100):
        sched.tick()
    assert sched.utilization() < 0.02
    assert not sched.overrun


def test_zero_ticks_utilization():
    assert RealTimeScheduler(1000.0).utilization() == 0.0
