"""Checkpoint/resume unit tests: artifact hygiene and bit-exact restarts.

The contract under test (``repro.runtime.checkpoint``): a checkpoint
is the pickled live engine between ``advance`` windows, so restoring it
and finishing the run is byte-identical to never having stopped —
for every engine kind, from arbitrary cut points, across real process
deaths (the campaign SIGKILL test at the bottom).
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.runtime import (BatchEngine, FleetSpec, MixedEngine, Session,
                           ShardedEngine, load_checkpoint, run_durable,
                           save_checkpoint, spawn_monitor_seeds)
from repro.runtime.checkpoint import CHECKPOINT_FORMAT_VERSION, engine_kind
from repro.station.profiles import staircase
from repro.station.scenarios import (build_calibrated_monitor,
                                     clear_calibration_cache)

pytestmark = pytest.mark.durability

_PROFILE = staircase([0.0, 70.0], dwell_s=0.25)  # 500 steps at 1 kHz
_TOTAL = 500
_EVERY = 10


def _rigs(n=2, base_seed=31337):
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(base_seed, n)]


def _fields(result):
    return {name: np.asarray(getattr(result, name))
            for name in ("time_s",) + type(result).STACKED_FIELDS}


def _assert_bit_equal(got, ref):
    a, b = _fields(got), _fields(ref)
    assert sorted(a) == sorted(b)
    for name in b:
        assert a[name].tobytes() == b[name].tobytes(), name


# -- artifact hygiene ---------------------------------------------------------


def test_engine_kind_dispatch():
    rigs = _rigs(2)
    assert engine_kind(rigs[0]) == "scalar"
    assert engine_kind(BatchEngine(_rigs(2))) == "batch"
    assert engine_kind(MixedEngine(_rigs(2))) == "mixed"
    assert engine_kind(ShardedEngine(_rigs(2), workers=2)) == "sharded"
    with pytest.raises(CheckpointError) as exc:
        engine_kind(object())
    assert exc.value.reason == "kind"


def test_save_load_round_trip(tmp_path):
    engine = BatchEngine(_rigs(2))
    engine.advance(_PROFILE, 123, record_every_n=_EVERY)
    path = save_checkpoint(engine, tmp_path / "a.ckpt",
                           meta={"note": "mid-run"})
    ckpt = load_checkpoint(path)
    assert ckpt.version == CHECKPOINT_FORMAT_VERSION
    assert ckpt.kind == "batch"
    assert ckpt.offset == 123
    assert ckpt.meta == {"note": "mid-run"}
    assert ckpt.engine.offset == 123


def test_load_missing_raises(tmp_path):
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(tmp_path / "nope.ckpt")
    assert exc.value.reason == "missing"


def test_load_corrupt_raises(tmp_path):
    path = tmp_path / "bad.ckpt"
    path.write_bytes(b"garbage")
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert exc.value.reason == "corrupt"
    path.write_bytes(pickle.dumps({"magic": "wrong"}))
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert exc.value.reason == "corrupt"


def test_load_version_mismatch_raises(tmp_path):
    path = save_checkpoint(BatchEngine(_rigs(1)), tmp_path / "v.ckpt")
    record = pickle.loads(path.read_bytes())
    record["version"] = CHECKPOINT_FORMAT_VERSION + 1
    path.write_bytes(pickle.dumps(record))
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path)
    assert exc.value.reason == "version"


def test_load_expect_kind_raises(tmp_path):
    path = save_checkpoint(BatchEngine(_rigs(1)), tmp_path / "k.ckpt")
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(path, expect_kind="mixed")
    assert exc.value.reason == "kind"
    assert load_checkpoint(path, expect_kind="batch").kind == "batch"


# -- bit-exact resume ---------------------------------------------------------


@pytest.mark.parametrize("cut", [1, 237, 499])
def test_batch_resume_bit_identical(tmp_path, cut):
    ref = BatchEngine(_rigs(2)).run(_PROFILE, record_every_n=_EVERY)
    engine = BatchEngine(_rigs(2))
    first = engine.advance(_PROFILE, cut, record_every_n=_EVERY)
    save_checkpoint(engine, tmp_path / "cut.ckpt")
    restored = load_checkpoint(tmp_path / "cut.ckpt").engine
    rest = restored.advance(_PROFILE, _TOTAL - cut, record_every_n=_EVERY)
    from repro.runtime import RunResult
    _assert_bit_equal(RunResult.concat_time([first, rest]), ref)


def test_run_durable_matches_plain_batch(tmp_path):
    ref = BatchEngine(_rigs(2)).run(_PROFILE, record_every_n=_EVERY)
    got = run_durable(_rigs(2), _PROFILE,
                      checkpoint_path=tmp_path / "run.ckpt",
                      record_every_n=_EVERY, window_steps=180)
    _assert_bit_equal(got, ref)
    assert not (tmp_path / "run.ckpt").exists()  # deleted on success


def test_run_durable_crash_resume_bit_identical(tmp_path, monkeypatch):
    """Kill run_durable after two windows; resume equals uninterrupted."""
    ref = run_durable(_rigs(2), _PROFILE,
                      checkpoint_path=tmp_path / "ref.ckpt",
                      record_every_n=_EVERY, window_steps=180)

    calls = {"n": 0}
    real_advance = MixedEngine.advance

    def dying_advance(self, *args, **kwargs):
        if calls["n"] == 2:
            raise KeyboardInterrupt("simulated process death")
        calls["n"] += 1
        return real_advance(self, *args, **kwargs)

    monkeypatch.setattr(MixedEngine, "advance", dying_advance)
    with pytest.raises(KeyboardInterrupt):
        run_durable(_rigs(2), _PROFILE,
                    checkpoint_path=tmp_path / "run.ckpt",
                    record_every_n=_EVERY, window_steps=180)
    monkeypatch.setattr(MixedEngine, "advance", real_advance)
    assert (tmp_path / "run.ckpt").exists()
    assert load_checkpoint(tmp_path / "run.ckpt").offset == 360

    got = run_durable(_rigs(2), _PROFILE,
                      checkpoint_path=tmp_path / "run.ckpt",
                      record_every_n=_EVERY, window_steps=180, resume=True)
    _assert_bit_equal(got, ref)
    assert not (tmp_path / "run.ckpt").exists()


def test_run_durable_resume_without_checkpoint_raises(tmp_path):
    with pytest.raises(CheckpointError) as exc:
        run_durable(_rigs(1), _PROFILE,
                    checkpoint_path=tmp_path / "none.ckpt",
                    record_every_n=_EVERY, resume=True)
    assert exc.value.reason == "missing"


def test_run_durable_fingerprint_mismatch_raises(tmp_path):
    engine = MixedEngine(_rigs(2))
    engine.advance(_PROFILE, 100, record_every_n=_EVERY)
    save_checkpoint(engine, tmp_path / "run.ckpt",
                    meta={"fingerprint": "not-this-run", "windows": []})
    with pytest.raises(CheckpointError) as exc:
        run_durable(_rigs(2), _PROFILE,
                    checkpoint_path=tmp_path / "run.ckpt",
                    record_every_n=_EVERY, resume=True)
    assert exc.value.reason == "mismatch"


def test_run_durable_validates_knobs(tmp_path):
    with pytest.raises(ConfigurationError):
        run_durable(_rigs(1), _PROFILE, checkpoint_path=tmp_path / "x",
                    window_steps=0)
    with pytest.raises(ConfigurationError):
        run_durable(_rigs(1), _PROFILE, checkpoint_path=tmp_path / "x",
                    record_every_n=0)
    with pytest.raises(ConfigurationError):
        run_durable([], _PROFILE, checkpoint_path=tmp_path / "x")


# -- Session wiring -----------------------------------------------------------


def test_session_checkpoint_dir_parity_and_stats(tmp_path):
    spec = FleetSpec.homogeneous(2, seed=555, fast_calibration=True)
    with Session(fleet=spec) as plain:
        plain.calibrate()
        ref = plain.run(_PROFILE, record_every_n=_EVERY)
    # Cold LRU: the durable session must go through the disk store.
    clear_calibration_cache()
    with Session(fleet=spec, checkpoint_dir=tmp_path) as durable:
        durable.calibrate()
        got = durable.run(_PROFILE, record_every_n=_EVERY)
        stats = durable.stats()
    _assert_bit_equal(got, ref)
    assert stats["store"]["root"] == str(tmp_path / "store")
    # The durable session's calibrations were published to the store.
    assert stats["store"]["writes"] >= 1


def test_session_resume_requires_durable_run(tmp_path):
    one = FleetSpec.homogeneous(1, seed=1, fast_calibration=True)
    two = FleetSpec.homogeneous(2, seed=1, fast_calibration=True)
    with Session(fleet=one) as session:
        session.calibrate()
        with pytest.raises(ConfigurationError):
            session.run(_PROFILE, resume=True)  # no checkpoint_dir
    with Session(fleet=two, checkpoint_dir=tmp_path) as session:
        session.calibrate()
        with pytest.raises(ConfigurationError):
            session.run(_PROFILE, resume=True, workers=2)  # not serial


# -- campaign process-death recovery -----------------------------------------


def _campaign_cmd(ckpt_dir: Path, out: Path, resume: bool = False):
    cmd = [sys.executable, "-m", "repro", "campaign",
           "--duration", "2", "--scenarios", "baseline,tank_leak",
           "--checkpoint-dir", str(ckpt_dir), "--out", str(out)]
    if resume:
        cmd.append("--resume")
    return cmd


def test_campaign_sigkill_resume_summary_bit_identical(tmp_path):
    """SIGKILL a campaign mid-window; the resumed summary is identical.

    The ``REPRO_CAMPAIGN_FAULT=kill:2`` hook hard-kills the process
    right after its second checkpoint write — a real process death, not
    an exception — and the resumed run's summary JSON must equal an
    uninterrupted reference byte for byte.
    """
    env = {**os.environ, "PYTHONPATH": "src"}
    repo = Path(__file__).resolve().parent.parent

    ref_out = tmp_path / "ref.json"
    ref = subprocess.run(_campaign_cmd(tmp_path / "ck-ref", ref_out),
                         cwd=repo, env=env, capture_output=True, text=True)
    assert ref.returncode == 0, ref.stderr
    assert not (tmp_path / "ck-ref" / "campaign.ckpt").exists()

    killed = subprocess.run(
        _campaign_cmd(tmp_path / "ck", tmp_path / "never.json"),
        cwd=repo, env={**env, "REPRO_CAMPAIGN_FAULT": "kill:2"},
        capture_output=True, text=True)
    assert killed.returncode == -signal.SIGKILL, (killed.returncode,
                                                  killed.stderr)
    assert (tmp_path / "ck" / "campaign.ckpt").exists()
    assert not (tmp_path / "never.json").exists()

    out = tmp_path / "resumed.json"
    resumed = subprocess.run(_campaign_cmd(tmp_path / "ck", out, resume=True),
                             cwd=repo, env=env, capture_output=True,
                             text=True)
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == ref_out.read_bytes()
    assert not (tmp_path / "ck" / "campaign.ckpt").exists()
    assert json.loads(out.read_text())  # valid, non-empty summary
